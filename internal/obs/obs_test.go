package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// stepClock is a deterministic injected clock advancing a fixed step per
// read, mirroring how the epoch-pinned tests elsewhere drive rp.
type stepClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newStepClock(step time.Duration) *stepClock {
	return &stepClock{now: time.Unix(1700000000, 0).UTC(), step: step}
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpki_syncs_total", "Completed syncs.").Add(3)
	r.Gauge("rpki_modules_inflight", "Streaming module slots occupied.").Set(2)
	h := r.Histogram("rpki_sync_duration_seconds", "Sync wall time.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	cv := r.CounterVec("rpki_repo_retries_total", "Repository request retries.", "point")
	cv.With("alpha.example").Add(2)
	cv.With("beta.example").Inc()
	r.GaugeFunc("rpki_rtr_clients", "Connected RTR clients.", func() float64 { return 4 })
	r.CollectGauges("rpki_breaker_state", "Breaker state per point (0 closed, 1 open, 2 half-open).",
		[]string{"point", "state"}, func(emit Emit) {
			emit(1, "beta.example", "open")
			emit(0, "alpha.example", "closed")
		})
	esc := r.GaugeVec("rpki_label_escape_check", "Label escaping.", "path")
	esc.With("a\\b\"c\nd").Set(1)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "boundaries", []float64{1, 2, 5})
	// Prometheus buckets are inclusive upper bounds: an observation equal
	// to a bound lands in that bucket, just above it in the next.
	for _, v := range []float64{1, 2, 5} {
		h.Observe(v)
	}
	h.Observe(1.0000001)
	h.Observe(6)
	want := []uint64{1, 2, 1, 1} // le=1, le=2, le=5, +Inf
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 1+2+5+1.0000001+6.0; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Unsorted bucket input must be sorted at registration.
	h2 := r.Histogram("b2", "unsorted", []float64{5, 1, 2})
	h2.Observe(1.5)
	if got := h2.counts[1].Load(); got != 1 {
		t.Errorf("unsorted buckets: observation of 1.5 in bucket 1, got count %d", got)
	}
}

func TestRegistryIdempotentAndShapeChecked(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Error("re-registration returned a different handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("handles do not share state")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registering with a different shape did not panic")
			}
		}()
		r.Gauge("x_total", "x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid metric name did not panic")
			}
		}()
		r.Counter("bad name", "x")
	}()
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", nil).Observe(1)
	r.CounterVec("d", "", "l").With("v").Inc()
	r.GaugeVec("e", "", "l").With("v").Dec()
	r.GaugeFunc("f", "", nil)
	r.CollectGauges("g", "", nil, nil)
	if err := r.WriteText(io.Discard); err != nil {
		t.Fatal(err)
	}

	var tr *Tracer
	sp := tr.StartTrace("x").Root().Child("y", "m")
	sp.SetDetail("d")
	sp.End()
	tr.StartTrace("x").Finish()
	if tr.Last() != nil {
		t.Error("nil tracer returned a trace")
	}

	var f *FlightRecorder
	f.Record(EventRetry, "m", "d")
	if f.Total() != 0 || f.Snapshot() != nil {
		t.Error("nil recorder retained events")
	}

	var h *Hub
	h.SetHealth(Health{Ready: true})
	if h.HealthSnapshot().Ready {
		t.Error("nil hub reported ready")
	}
	if h.Registry() != nil || h.Recorder() != nil || h.Tracer() != nil {
		t.Error("nil hub returned non-nil components")
	}
}

func TestZeroAllocUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DurationBuckets())
	vec := r.CounterVec("v_total", "", "point")
	held := vec.With("alpha") // handle held once, as hot paths do
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter.Inc", func() { c.Inc() }},
		{"counter.Add", func() { c.Add(3) }},
		{"gauge.Set", func() { g.Set(7) }},
		{"gauge.Add", func() { g.Add(1) }},
		{"histogram.Observe", func() { h.Observe(0.42) }},
		{"heldVecChild.Inc", func() { held.Inc() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs per op, want 0", tc.name, allocs)
		}
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	clock := newStepClock(time.Millisecond)
	f := NewFlightRecorder(8, clock.Now)
	for i := 0; i < 20; i++ {
		f.Recordf(EventRetry, "m", "n=%d", i)
	}
	if f.Total() != 20 {
		t.Fatalf("total = %d, want 20", f.Total())
	}
	events := f.Snapshot()
	if len(events) != 8 {
		t.Fatalf("retained %d events, want 8", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(12 + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, wantSeq)
		}
		if want := fmt.Sprintf("n=%d", wantSeq); e.Detail != want {
			t.Errorf("event %d: detail %q, want %q", i, e.Detail, want)
		}
		if i > 0 && !events[i-1].At.Before(e.At) {
			t.Errorf("event %d: timestamps not increasing", i)
		}
	}
}

func TestFlightRecorderConcurrentWriters(t *testing.T) {
	const writers, each = 8, 500
	f := NewFlightRecorder(64, nil)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f.Record(EventBreakerOpen, fmt.Sprintf("w%d", w), "x")
				if i%17 == 0 {
					f.Snapshot() // readers interleave with writers
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Total() != writers*each {
		t.Fatalf("total = %d, want %d", f.Total(), writers*each)
	}
	events := f.Snapshot()
	if len(events) != 64 {
		t.Fatalf("retained %d, want 64", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d -> %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
	if events[len(events)-1].Seq != writers*each-1 {
		t.Errorf("last seq = %d, want %d", events[len(events)-1].Seq, writers*each-1)
	}
}

func TestTraceSpans(t *testing.T) {
	clock := newStepClock(time.Second)
	tr := NewTracer(clock.Now, 0)
	trace := tr.StartTrace("sync")
	walk := trace.Root().Child("walk", "alpha.example")
	fetch := walk.Child("fetch", "")
	fetch.End()
	walk.SetDetail("reused")
	walk.End()
	trace.Finish()

	if tr.Last() != trace {
		t.Fatal("finished trace not published as last")
	}
	b, err := json.Marshal(trace)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Spans        int `json:"spans"`
		DroppedSpans int `json:"dropped_spans"`
		Root         struct {
			Name       string `json:"name"`
			DurationNs int64  `json:"duration_ns"`
			Children   []struct {
				Name       string `json:"name"`
				Module     string `json:"module"`
				Detail     string `json:"detail"`
				DurationNs int64  `json:"duration_ns"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Spans != 3 || got.DroppedSpans != 0 {
		t.Errorf("spans=%d dropped=%d, want 3/0", got.Spans, got.DroppedSpans)
	}
	if got.Root.Name != "sync" || len(got.Root.Children) != 1 {
		t.Fatalf("unexpected root: %+v", got.Root)
	}
	w := got.Root.Children[0]
	if w.Module != "alpha.example" || w.Detail != "reused" {
		t.Errorf("walk span: %+v", w)
	}
	// Step clock: root start t0, walk start t0+1s, fetch start t0+2s,
	// fetch end t0+3s, walk end t0+4s, root end t0+5s.
	if w.DurationNs != (3 * time.Second).Nanoseconds() {
		t.Errorf("walk duration %d, want 3s", w.DurationNs)
	}
	if got.Root.DurationNs != (5 * time.Second).Nanoseconds() {
		t.Errorf("root duration %d, want 5s", got.Root.DurationNs)
	}
}

func TestTraceSpanBound(t *testing.T) {
	tr := NewTracer(newStepClock(0).Now, 3)
	trace := tr.StartTrace("sync")
	var kept int
	for i := 0; i < 10; i++ {
		if trace.Root().Child("walk", "m") != nil {
			kept++
		}
	}
	trace.Finish()
	if kept != 2 { // root + 2 children = bound of 3
		t.Errorf("kept %d children, want 2", kept)
	}
	b, _ := json.Marshal(trace)
	if !strings.Contains(string(b), `"dropped_spans":8`) {
		t.Errorf("dropped count missing from %s", b)
	}
}

func TestHubHealthAndReadiness(t *testing.T) {
	clock := newStepClock(time.Second)
	h := NewHub(clock.Now)
	if hs := h.HealthSnapshot(); hs.Ready || hs.State != HealthUnknown {
		t.Fatalf("fresh hub: %+v", hs)
	}
	h.SetHealth(Health{State: HealthDegraded, Detail: "3 diagnostics", Syncs: 1})
	if h.HealthSnapshot().Ready {
		t.Error("degraded-only sync must not set ready")
	}
	h.SetHealth(Health{Ready: true, State: HealthClean, Syncs: 2})
	if !h.HealthSnapshot().Ready {
		t.Error("clean sync must set ready")
	}
	// Readiness is sticky even if a later sync degrades.
	h.SetHealth(Health{State: HealthStale, Detail: "1 stale point", Syncs: 3})
	hs := h.HealthSnapshot()
	if !hs.Ready || hs.State != HealthStale {
		t.Errorf("after stale sync: %+v", hs)
	}
	// Each state transition left a flight-recorder event.
	var changes int
	for _, e := range h.Recorder().Snapshot() {
		if e.Kind == EventHealthChange {
			changes++
		}
	}
	if changes != 3 {
		t.Errorf("recorded %d health changes, want 3", changes)
	}
}

func TestOpsServer(t *testing.T) {
	h := NewHub(nil)
	h.Registry().Counter("rpki_syncs_total", "Completed syncs.").Add(2)
	h.Recorder().Record(EventStaleFallback, "alpha.example", "served LKG")
	trc := h.Tracer().StartTrace("sync")
	trc.Finish()

	srv, err := h.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "rpki_syncs_total 2") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"state": "unknown"`) {
		t.Errorf("/healthz: code %d body %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before first sync: code %d, want 503", code)
	}
	h.SetHealth(Health{Ready: true, State: HealthClean, Syncs: 1})
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, `"state": "clean"`) {
		t.Errorf("/readyz after clean sync: code %d body %q", code, body)
	}
	if code, body := get("/debug/flightrecorder"); code != 200 ||
		!strings.Contains(body, `"kind": "stale-fallback"`) {
		t.Errorf("/debug/flightrecorder: code %d body %q", code, body)
	}
	if code, body := get("/debug/lasttrace"); code != 200 || !strings.Contains(body, `"name": "sync"`) {
		t.Errorf("/debug/lasttrace: code %d body %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
}

func TestProfileHelpers(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = fmt.Sprintf("%d", i)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(cpu); err != nil || st.Size() == 0 {
		t.Errorf("cpu profile not written: %v", err)
	}
	heap := filepath.Join(dir, "heap.prof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(heap); err != nil || st.Size() == 0 {
		t.Errorf("heap profile not written: %v", err)
	}
	// Empty paths are explicit no-ops.
	stop, err = StartCPUProfile("")
	if err != nil || stop() != nil {
		t.Error("empty cpu path not a no-op")
	}
	if err := WriteHeapProfile(""); err != nil {
		t.Error("empty heap path not a no-op")
	}
}
