package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// EventKind classifies one degraded event captured by the flight recorder.
// This is the closed vocabulary of "something went wrong and the validator
// coped": every DiagKind and every breaker state maps into it (mechanized
// by the metricscoverage lint rule), so no degradation the relying party
// can express is unrecordable.
type EventKind uint8

const (
	// EventRetry: a repository request failed and was retried with backoff.
	EventRetry EventKind = iota
	// EventBreakerOpen: a publication point's circuit breaker tripped open.
	EventBreakerOpen
	// EventBreakerHalfOpen: an open breaker admitted a probe request.
	EventBreakerHalfOpen
	// EventBreakerClosed: a probe succeeded and the breaker closed.
	EventBreakerClosed
	// EventBreakerFastFail: a request was refused while a breaker was open.
	EventBreakerFastFail
	// EventStaleFallback: an unreachable point was served from its
	// last-known-good snapshot.
	EventStaleFallback
	// EventIncrementalFallback: an incremental (STAT-driven) sync failed
	// mid-protocol and was replaced by a clean full fetch.
	EventIncrementalFallback
	// EventReuseRejected: a module-memo entry existed but was refused
	// (authority changed, epoch expired, or bytes changed) and the module
	// was fully re-validated — the unsafe-reuse guard firing.
	EventReuseRejected
	// EventDiagnostic: a validation diagnostic (any DiagKind) was emitted.
	EventDiagnostic
	// EventHealthChange: the daemon's sync health state changed
	// (clean/degraded/stale transitions).
	EventHealthChange
)

func (k EventKind) String() string {
	switch k {
	case EventRetry:
		return "retry"
	case EventBreakerOpen:
		return "breaker-open"
	case EventBreakerHalfOpen:
		return "breaker-half-open"
	case EventBreakerClosed:
		return "breaker-closed"
	case EventBreakerFastFail:
		return "breaker-fast-fail"
	case EventStaleFallback:
		return "stale-fallback"
	case EventIncrementalFallback:
		return "incremental-fallback"
	case EventReuseRejected:
		return "reuse-rejected"
	case EventDiagnostic:
		return "diagnostic"
	case EventHealthChange:
		return "health-change"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one recorded degraded event.
type Event struct {
	// Seq is the event's position in the recorder's lifetime stream; gaps
	// after a Snapshot reveal how much the ring overwrote.
	Seq uint64
	// At is the recorder clock's time of capture.
	At time.Time
	// Kind classifies the event.
	Kind EventKind
	// Module is the publication point involved ("" when not applicable).
	Module string
	// Detail is free-form context (error text, state transition, reason).
	Detail string
}

// MarshalJSON renders the kind symbolically.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Seq    uint64    `json:"seq"`
		At     time.Time `json:"at"`
		Kind   string    `json:"kind"`
		Module string    `json:"module,omitempty"`
		Detail string    `json:"detail,omitempty"`
	}{e.Seq, e.At, e.Kind.String(), e.Module, e.Detail})
}

// FlightRecorder is a bounded ring buffer of degraded events, queryable
// after the fact: when an operator notices a bad poll cycle, the recorder
// holds the last N retries, breaker transitions, fallbacks and reuse
// rejections with their context — the black box of the validator.
//
// Recording is deliberately not on the zero-alloc budget: events fire on
// degraded paths (failures, fallbacks, state transitions), which are
// orders of magnitude rarer than metric updates and already paying for
// I/O or backoff. A healthy steady-state sync records nothing.
type FlightRecorder struct {
	clock func() time.Time

	mu sync.Mutex
	// ring is the fixed-capacity buffer; seq is the lifetime event count.
	// ring[seq % cap] is the slot the NEXT event lands in. guarded by mu.
	ring []Event
	seq  uint64
}

// defaultRecorderCapacity holds a few minutes of heavy degradation.
const defaultRecorderCapacity = 1024

// NewFlightRecorder creates a recorder holding the last capacity events
// (0: a sensible default) stamped by clock (nil: time.Now).
func NewFlightRecorder(capacity int, clock func() time.Time) *FlightRecorder {
	if capacity <= 0 {
		capacity = defaultRecorderCapacity
	}
	if clock == nil {
		clock = time.Now
	}
	return &FlightRecorder{clock: clock, ring: make([]Event, 0, capacity)}
}

// Record captures one event (nil-safe). Concurrent callers serialize on
// the ring's mutex.
func (f *FlightRecorder) Record(kind EventKind, module, detail string) {
	if f == nil {
		return
	}
	at := f.clock()
	f.mu.Lock()
	e := Event{Seq: f.seq, At: at, Kind: kind, Module: module, Detail: detail}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, e)
	} else {
		f.ring[f.seq%uint64(cap(f.ring))] = e
	}
	f.seq++
	f.mu.Unlock()
}

// Recordf is Record with a formatted detail.
func (f *FlightRecorder) Recordf(kind EventKind, module, format string, args ...any) {
	if f == nil {
		return
	}
	f.Record(kind, module, fmt.Sprintf(format, args...))
}

// Snapshot returns the retained events, oldest first. The total count of
// events ever recorded is Seq of the last event plus one; a first Seq
// greater than zero means the ring wrapped and older events are gone.
func (f *FlightRecorder) Snapshot() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, 0, len(f.ring))
	if f.seq > uint64(len(f.ring)) {
		// Wrapped: oldest retained event lives at seq % cap.
		start := f.seq % uint64(cap(f.ring))
		out = append(out, f.ring[start:]...)
		out = append(out, f.ring[:start]...)
	} else {
		out = append(out, f.ring...)
	}
	return out
}

// Total returns the lifetime event count (recorded, not retained).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}
