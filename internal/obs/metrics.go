// Package obs is the observability plane of the relying party: a
// dependency-free metrics registry with Prometheus text exposition, a
// bounded flight recorder for degraded events, per-sync trace spans timed
// by the injected clock, and the operator HTTP surface that exposes all of
// it.
//
// The paper's thesis is that relying parties must notice authority
// misbehavior; PR 2's degradation ladder and PR 3/6's reuse tiers compute
// the evidence but, until this package, buried it in per-sync Result
// structs — an operator polling between syncs was blind exactly when a
// Stalloris-style downgrade or a silently-vanishing subtree mattered. Every
// signal the validator computes now has a continuously-scrapable series, a
// recorded event, or both.
//
// Design constraints, in order:
//
//  1. The hot path must be provably free: a counter/gauge update is one
//     atomic RMW, a histogram observation is two — zero allocations, no
//     locks, no map lookups. Callers obtain handles once at construction
//     and hold them. Benchmarked in rpki-bench (BENCH_PR7.json): warm
//     re-sync overhead with full instrumentation is bounded at 2%.
//  2. Uninstrumented use must cost nothing: every handle method is
//     nil-receiver safe, so a component without a registry skips the work
//     on one predictable branch.
//  3. No dependencies: the registry speaks the Prometheus text exposition
//     format directly (WriteText); no client library is vendored.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the exposition TYPE of a family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindCounterCollect
	kindGaugeCollect
)

func (k metricKind) expoType() string {
	switch k {
	case kindCounter, kindCounterFunc, kindCounterCollect:
		return "counter"
	case kindGauge, kindGaugeFunc, kindGaugeCollect:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing value. Add and Inc are one atomic
// RMW: zero allocations, safe for any number of concurrent writers, and
// no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value. Set is one atomic store, Add one CAS
// loop: zero allocations, nil-receiver safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Observe is a linear scan over
// the (small, fixed) bucket bounds plus two atomic RMWs: zero allocations,
// nil-receiver safe. Buckets are upper bounds; the +Inf bucket is implicit.
type Histogram struct {
	upper   []float64
	counts  []atomic.Uint64 // len(upper)+1; last is +Inf
	sumBits atomic.Uint64
	total   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.total.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DurationBuckets is the default latency bucket ladder, in seconds: wide
// enough to cover a 2.5ms warm re-sync and a 350s cold 1M-object walk in
// the same series.
func DurationBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}
}

// SizeBuckets is the default byte-size bucket ladder: 256 B to 256 MiB in
// powers of 16.
func SizeBuckets() []float64 {
	return []float64{256, 4096, 65536, 1 << 20, 16 << 20, 256 << 20}
}

// CounterVec is a family of counters sharing a name, distinguished by label
// values. With allocates on first use of a label combination; hot paths
// call it once and hold the returned handle.
type CounterVec struct {
	fam *family
}

// With returns the counter for the given label values (one per label name,
// in declaration order).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.child(values).(*Counter)
}

// GaugeVec is a family of gauges sharing a name, distinguished by label
// values.
type GaugeVec struct {
	fam *family
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.child(values).(*Gauge)
}

// Emit publishes one series of a collect-on-scrape family: the value plus
// one label value per declared label name.
type Emit func(value float64, labelValues ...string)

// family is one exposition family: a name, a TYPE, and either a single
// metric, labeled children, or a scrape-time callback.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64

	single  any             // *Counter, *Gauge or *Histogram (unlabeled)
	fn      func() float64  // value callback (kind*Func)
	collect func(emit Emit) // series callback (kind*Collect)

	mu sync.Mutex
	// children maps joined label values to the child metric. guarded by mu.
	children map[string]any
}

const labelSep = "\x1f"

func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.children[key]
	if !ok {
		switch f.kind {
		case kindCounter:
			m = &Counter{}
		case kindGauge:
			m = &Gauge{}
		case kindHistogram:
			m = newHistogram(f.buckets)
		default:
			panic("obs: family kind has no children")
		}
		f.children[key] = m
	}
	return m
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent: asking for a name that
// already exists with the same shape (kind, labels, buckets) returns the
// existing handle, so components sharing one registry re-construct freely;
// re-registering under a different shape panics — that is a programming
// error, not a runtime condition.
type Registry struct {
	mu sync.Mutex
	// families maps metric name to its family. guarded by mu.
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register finds or creates a family, enforcing shape compatibility.
func (r *Registry) register(name, help string, kind metricKind, buckets []float64, labelNames []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labelNames) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labelNames,
		buckets: buckets, children: make(map[string]any)}
	r.families[name] = f
	return f
}

// Counter registers (or returns) the plain counter name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindCounter, nil, nil)
	if f.single == nil {
		f.single = &Counter{}
	}
	return f.single.(*Counter)
}

// Gauge registers (or returns) the plain gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindGauge, nil, nil)
	if f.single == nil {
		f.single = &Gauge{}
	}
	return f.single.(*Gauge)
}

// Histogram registers (or returns) the histogram name with the given bucket
// upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	sorted := append([]float64(nil), buckets...)
	sort.Float64s(sorted)
	f := r.register(name, help, kindHistogram, sorted, nil)
	if f.single == nil {
		f.single = newHistogram(sorted)
	}
	return f.single.(*Histogram)
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, kindCounter, nil, labelNames)}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, kindGauge, nil, labelNames)}
}

// CounterFunc registers a counter whose value is read by fn at scrape time
// — for sources that already keep their own atomic count.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, kindCounterFunc, nil, nil)
	f.fn = fn
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, kindGaugeFunc, nil, nil)
	f.fn = fn
}

// CollectGauges registers a labeled gauge family whose series are produced
// by collect at scrape time — for label sets that change at runtime (one
// breaker gauge per publication point, one queue-depth gauge per connected
// router) where per-update bookkeeping would put a map on the hot path.
func (r *Registry) CollectGauges(name, help string, labelNames []string, collect func(emit Emit)) {
	if r == nil {
		return
	}
	f := r.register(name, help, kindGaugeCollect, nil, labelNames)
	f.collect = collect
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4), deterministically ordered: families by name, series by
// label values. Scrape-time callbacks run here, off every hot path.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	b := &strings.Builder{}
	for _, f := range fams {
		writeFamily(b, f)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeFamily(b *strings.Builder, f *family) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind.expoType())
	switch f.kind {
	case kindCounterFunc, kindGaugeFunc:
		writeSeries(b, f.name, nil, nil, f.fn())
	case kindCounterCollect, kindGaugeCollect:
		type series struct {
			values []string
			v      float64
		}
		var all []series
		if f.collect != nil {
			f.collect(func(v float64, labelValues ...string) {
				vals := append([]string(nil), labelValues...)
				all = append(all, series{values: vals, v: v})
			})
		}
		sort.Slice(all, func(i, j int) bool {
			return strings.Join(all[i].values, labelSep) < strings.Join(all[j].values, labelSep)
		})
		for _, s := range all {
			writeSeries(b, f.name, f.labels, s.values, s.v)
		}
	default:
		if f.single != nil {
			writeMetric(b, f, nil, f.single)
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		kids := make([]any, len(keys))
		for i, k := range keys {
			kids[i] = f.children[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			var values []string
			if k != "" || len(f.labels) > 0 {
				values = strings.Split(k, labelSep)
			}
			writeMetric(b, f, values, kids[i])
		}
	}
}

func writeMetric(b *strings.Builder, f *family, labelValues []string, m any) {
	switch m := m.(type) {
	case *Counter:
		writeSeries(b, f.name, f.labels, labelValues, float64(m.Value()))
	case *Gauge:
		writeSeries(b, f.name, f.labels, labelValues, m.Value())
	case *Histogram:
		cum := uint64(0)
		for i := range m.counts {
			cum += m.counts[i].Load()
			le := "+Inf"
			if i < len(m.upper) {
				le = formatFloat(m.upper[i])
			}
			writeSeries(b, f.name+"_bucket", append(f.labels, "le"), append(labelValues, le), float64(cum))
		}
		writeSeries(b, f.name+"_sum", f.labels, labelValues, m.Sum())
		writeSeries(b, f.name+"_count", f.labels, labelValues, float64(m.Count()))
	}
}

func writeSeries(b *strings.Builder, name string, labels, values []string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			val := ""
			if i < len(values) {
				val = values[i]
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(labelEscaper.Replace(val))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
