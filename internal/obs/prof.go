package obs

// Profiling comes in two flavors and this file is the single seam both go
// through:
//
//   - File profiles (StartCPUProfile / WriteHeapProfile) suit batch runs —
//     rpki-bench, a one-shot `rpki-rp` sync — where the process exits and
//     there is no server to query. The daemon's -cpuprofile/-memprofile
//     flags land here.
//   - HTTP profiles (/debug/pprof on the ops server) suit the polling
//     daemon: attach `go tool pprof http://host/debug/pprof/profile` to a
//     live process without restarting it, sample exactly the window you
//     care about, and never leave files behind.
//
// Rule of thumb: if the process outlives your question, use HTTP; if the
// question outlives the process, use files.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a stop
// function that ends the profile and closes the file. An empty path is a
// no-op (the returned stop is still non-nil).
func StartCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		closeErr := f.Close()
		if closeErr != nil {
			return nil, fmt.Errorf("cpu profile: %w (close: %v)", err, closeErr)
		}
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects for up-to-date accounting and writes a
// heap profile to path. An empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		closeErr := f.Close()
		if closeErr != nil {
			return fmt.Errorf("heap profile: %w (close: %v)", err, closeErr)
		}
		return fmt.Errorf("heap profile: %w", err)
	}
	return f.Close()
}
