package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// HealthState is the daemon's coarse sync health, derived from the last
// completed sync. It refines Result.Incomplete()'s single bit into the
// three outcomes the degradation ladder can actually produce.
type HealthState uint8

const (
	// HealthUnknown: no sync has completed yet.
	HealthUnknown HealthState = iota
	// HealthClean: the last sync validated every reachable point with no
	// diagnostics and no fallbacks.
	HealthClean
	// HealthDegraded: the last sync completed but emitted diagnostics
	// (failures, drops, invalid objects) without serving stale data.
	HealthDegraded
	// HealthStale: the last sync served at least one publication point
	// from its last-known-good snapshot — output is valid but old.
	HealthStale
)

func (s HealthState) String() string {
	switch s {
	case HealthUnknown:
		return "unknown"
	case HealthClean:
		return "clean"
	case HealthDegraded:
		return "degraded"
	case HealthStale:
		return "stale"
	}
	return "invalid"
}

// Health is one snapshot of daemon liveness for /healthz and /readyz.
type Health struct {
	// Ready reports whether at least one sync has produced servable output
	// (clean or LKG-valid). Once true it stays true: readiness gates
	// "should this instance receive RTR clients", not "was the last poll
	// perfect" — that is the health state's job.
	Ready bool `json:"ready"`
	// State classifies the last completed sync.
	State HealthState `json:"-"`
	// Detail is a human summary of the last sync (diag counts, fallbacks).
	Detail string `json:"detail,omitempty"`
	// LastSyncAt is the injected-clock time the last sync finished.
	LastSyncAt time.Time `json:"last_sync_at"`
	// Syncs counts completed syncs.
	Syncs uint64 `json:"syncs"`
}

// MarshalJSON renders the state symbolically.
func (h Health) MarshalJSON() ([]byte, error) {
	type raw Health
	return json.Marshal(struct {
		raw
		State string `json:"state"`
	}{raw(h), h.State.String()})
}

// Hub bundles the observability plane one process shares: a metrics
// registry, a flight recorder, a tracer, and the health snapshot the ops
// endpoints serve. A nil *Hub is a valid "observability off" value — all
// accessors return nil and instrumented components degrade to no-ops.
type Hub struct {
	reg *Registry
	rec *FlightRecorder
	trc *Tracer

	mu sync.Mutex
	// health is the current snapshot. guarded by mu.
	health Health
}

// NewHub creates a hub on the given clock (nil: time.Now). The clock feeds
// trace timing and flight-recorder timestamps; metrics are clock-free.
func NewHub(clock func() time.Time) *Hub {
	return &Hub{
		reg: NewRegistry(),
		rec: NewFlightRecorder(0, clock),
		trc: NewTracer(clock, 0),
	}
}

// Registry returns the hub's metrics registry (nil on a nil hub).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Recorder returns the hub's flight recorder (nil on a nil hub).
func (h *Hub) Recorder() *FlightRecorder {
	if h == nil {
		return nil
	}
	return h.rec
}

// Tracer returns the hub's tracer (nil on a nil hub).
func (h *Hub) Tracer() *Tracer {
	if h == nil {
		return nil
	}
	return h.trc
}

// SetHealth publishes a new health snapshot (nil-safe). Readiness is
// sticky: once any snapshot reports Ready, later ones cannot clear it.
// A state change is also dropped into the flight recorder so operators
// can line up degradation with the retries and fallbacks around it.
func (h *Hub) SetHealth(next Health) {
	if h == nil {
		return
	}
	h.mu.Lock()
	prev := h.health
	next.Ready = next.Ready || prev.Ready
	h.health = next
	h.mu.Unlock()
	if next.State != prev.State {
		h.rec.Recordf(EventHealthChange, "", "%s -> %s: %s", prev.State, next.State, next.Detail)
	}
}

// HealthSnapshot returns the current health (zero value on a nil hub).
func (h *Hub) HealthSnapshot() Health {
	if h == nil {
		return Health{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.health
}
