package analysis

import (
	"go/types"
	"sync"
)

// FactStore is the shared per-function summary cache of one Program. The
// interprocedural rules publish derived facts here ("this function may
// acquire these locks", "this function is a taint sanitizer") keyed by the
// owning rule and function, so a summary is computed once per Run even
// when several rules — or several fixpoint iterations of one rule — need
// it. Facts are opaque to the framework; each rule defines its own value
// types.
type FactStore struct {
	mu sync.Mutex
	// m holds the published facts. guarded by mu.
	m map[factKey]any
}

type factKey struct {
	fn  *types.Func
	key string
}

// NewFactStore creates an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]any)}
}

// Publish stores a fact about fn under key, replacing any prior value.
func (s *FactStore) Publish(fn *types.Func, key string, value any) {
	s.mu.Lock()
	s.m[factKey{fn, key}] = value
	s.mu.Unlock()
}

// Fact returns the fact published about fn under key, if any.
func (s *FactStore) Fact(fn *types.Func, key string) (any, bool) {
	s.mu.Lock()
	v, ok := s.m[factKey{fn, key}]
	s.mu.Unlock()
	return v, ok
}

// Memo returns the fact published about fn under key, computing and
// publishing it with compute on a miss. compute runs outside the store's
// lock; concurrent callers may race to compute but the first published
// value wins and is returned to everyone.
func (s *FactStore) Memo(fn *types.Func, key string, compute func() any) any {
	s.mu.Lock()
	if v, ok := s.m[factKey{fn, key}]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := compute()
	s.mu.Lock()
	if prior, ok := s.m[factKey{fn, key}]; ok {
		s.mu.Unlock()
		return prior
	}
	s.m[factKey{fn, key}] = v
	s.mu.Unlock()
	return v
}
