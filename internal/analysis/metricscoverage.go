package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// metricscoverage: the observability plane (internal/obs) only shows what
// the instrumented packages feed it — a diagnostic kind or breaker state
// with no flight-recorder event kind degrades invisibly, which is the
// paper's failure mode re-created inside our own tooling. The rule finds
// every "observable enum" — a named type with two or more package-level
// Diag*- or Breaker*-prefixed constants — declared in a package that
// imports an observability package (any package named "obs"), and
// requires:
//
//   - at least one map composite literal keyed by that type whose value
//     type comes from the obs package (the event-kind table);
//   - the union of those tables' keys to contain every constant.
//
// Packages that do not import obs are exempt: the contract binds once a
// package has opted into instrumentation. An intentionally-unobserved enum
// needs a //lint:ignore with its reason.
var metricsCoverageRule = &Rule{
	Name: "metricscoverage",
	Doc:  "observable enum (Diag*/Breaker* constants) lacks an exhaustive obs event-kind table",
	Run:  runMetricsCoverage,
}

// observablePrefixes are the constant-name prefixes that mark an enum as
// part of the degradation vocabulary.
var observablePrefixes = []string{"Diag", "Breaker"}

// observableConstants returns the package-level observable constants of
// the named type t, or nil if t is not an observable enum (fewer than two
// such constants).
func observableConstants(t types.Type) map[string]bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	scope := named.Obj().Pkg().Scope()
	out := make(map[string]bool)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !hasObservablePrefix(name) {
			continue
		}
		if types.Identical(c.Type(), t) {
			out[name] = false
		}
	}
	if len(out) < 2 {
		return nil
	}
	return out
}

func hasObservablePrefix(name string) bool {
	for _, p := range observablePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// importsObs reports whether the package imports any package named "obs".
func importsObs(pkg *Package) bool {
	if pkg.Types == nil {
		return false
	}
	for _, imp := range pkg.Types.Imports() {
		if imp.Name() == "obs" {
			return true
		}
	}
	return false
}

// fromObsPackage reports whether t is a named type declared in a package
// named "obs".
func fromObsPackage(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "obs"
}

func runMetricsCoverage(pass *Pass) {
	if !importsObs(pass.Pkg) {
		return
	}
	info := pass.Pkg.Info

	// coverage tracks one observable enum declared in this package: which
	// constants some event-kind table maps, and where the first table is.
	type coverage struct {
		tn     *types.TypeName
		want   map[string]bool
		tables int
		first  *ast.CompositeLit
	}
	byType := make(map[*types.Named]*coverage)
	var enums []*coverage
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		want := observableConstants(named)
		if want == nil {
			continue
		}
		cov := &coverage{tn: tn, want: want}
		byType[named] = cov
		enums = append(enums, cov)
	}
	if len(enums) == 0 {
		return
	}
	sort.Slice(enums, func(i, j int) bool { return enums[i].tn.Pos() < enums[j].tn.Pos() })

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := info.Types[lit]
			if !ok || tv.Type == nil {
				return true
			}
			mt, ok := tv.Type.Underlying().(*types.Map)
			if !ok {
				return true
			}
			keyNamed, ok := mt.Key().(*types.Named)
			if !ok {
				return true
			}
			cov, ok := byType[keyNamed]
			if !ok || !fromObsPackage(mt.Elem()) {
				return true
			}
			cov.tables++
			if cov.first == nil {
				cov.first = lit
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if name := constName(info, kv.Key); name != "" {
					if _, tracked := cov.want[name]; tracked {
						cov.want[name] = true
					}
				}
			}
			return true
		})
	}

	for _, cov := range enums {
		if cov.tables == 0 {
			pass.Reportf(cov.tn.Pos(),
				"observable enum %s has no obs event-kind table: every state this package can enter must map to a metric or flight-recorder event",
				cov.tn.Name())
			continue
		}
		if missing := missingNames(cov.want); len(missing) != 0 {
			pass.Reportf(cov.first.Pos(),
				"obs event-kind table keyed by %s misses: %s — a degraded state without an event is invisible to operators",
				cov.tn.Name(), strings.Join(missing, ", "))
		}
	}
}
