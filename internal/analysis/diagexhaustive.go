package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// diagexhaustive: the relying party's Diag* constants are the vocabulary
// in which degradation is made observable — the paper's whole point is
// that what goes unreported goes unnoticed. A new DiagKind that is missing
// from a diagnostic switch or string table silently renders as
// "DiagKind(9)" (or not at all) exactly when it matters. The rule finds
// every enum-like named type with two or more package-level Diag*
// constants, and requires:
//
//   - every switch over a value of that type with no default clause to
//     handle every Diag* constant;
//   - every map or keyed composite literal keyed by that type (a string
//     table) to contain every Diag* constant.
//
// A switch with a default clause is exempt — it has declared a fallback.
// An intentionally-partial table needs a //lint:ignore with its reason.
var diagExhaustiveRule = &Rule{
	Name: "diagexhaustive",
	Doc:  "Diag* constant missing from a diagnostic switch or string table",
	Run:  runDiagExhaustive,
}

// diagConstants returns the names of package-level Diag*-prefixed
// constants of the named type t, or nil if t is not a diag enum (fewer
// than two such constants).
func diagConstants(t types.Type) map[string]bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	scope := named.Obj().Pkg().Scope()
	out := make(map[string]bool)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Diag") {
			continue
		}
		if types.Identical(c.Type(), t) {
			out[name] = false
		}
	}
	if len(out) < 2 {
		return nil
	}
	return out
}

func missingNames(want map[string]bool) []string {
	var missing []string
	for name, seen := range want {
		if !seen {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

// constName resolves an expression (identifier or pkg.Ident selector) to
// the name of the constant it denotes, or "".
func constName(info *types.Info, e ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	if c, ok := info.Uses[id].(*types.Const); ok {
		return c.Name()
	}
	return ""
}

func runDiagExhaustive(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkDiagSwitch(pass, n)
			case *ast.CompositeLit:
				checkDiagTable(pass, n)
			}
			return true
		})
	}
	_ = info
}

func checkDiagSwitch(pass *Pass, sw *ast.SwitchStmt) {
	info := pass.Pkg.Info
	if sw.Tag == nil {
		return
	}
	tagType := info.Types[sw.Tag].Type
	if tagType == nil {
		return
	}
	want := diagConstants(tagType)
	if want == nil {
		return
	}
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // default clause: the switch has declared a fallback
		}
		for _, e := range clause.List {
			if name := constName(info, e); name != "" {
				if _, tracked := want[name]; tracked {
					want[name] = true
				}
			}
		}
	}
	if missing := missingNames(want); len(missing) != 0 {
		pass.Reportf(sw.Pos(),
			"switch on %s has no default and misses: %s — an unhandled diagnostic is a silent one",
			tagType.String(), strings.Join(missing, ", "))
	}
}

func checkDiagTable(pass *Pass, lit *ast.CompositeLit) {
	info := pass.Pkg.Info
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	var keyType types.Type
	switch t := tv.Type.Underlying().(type) {
	case *types.Map:
		keyType = t.Key()
	default:
		return
	}
	want := diagConstants(keyType)
	if want == nil {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if name := constName(info, kv.Key); name != "" {
			if _, tracked := want[name]; tracked {
				want[name] = true
			}
		}
	}
	if missing := missingNames(want); len(missing) != 0 {
		pass.Reportf(lit.Pos(),
			"table keyed by %s misses: %s — an unmapped diagnostic renders as nothing when it matters most",
			keyType.String(), strings.Join(missing, ", "))
	}
}
