package analysis

import (
	"go/ast"
	"strings"
)

// wallclock: validity-epoch math (certificate windows, manifest/CRL
// nextUpdate, module-reuse epochs, LKG staleness) must read the injected
// clock (rp.Config.Clock, cert.ValidationContext.Now), never the wall
// clock. A stray time.Now() in those packages makes expiry semantics
// nondeterministic: tests can no longer pin time, and two components of
// one sync can disagree about "now" — which is how a cached verdict
// outlives its epoch unnoticed. The rule flags direct calls to time.Now,
// time.Since and time.Until inside the epoch-sensitive packages.
// Assigning time.Now as a default clock value (cfg.Clock = time.Now) is
// not a call and stays legal — that is the injection point itself.
var wallclockRule = &Rule{
	Name: "wallclock",
	Doc:  "wall-clock read (time.Now/Since/Until) in validation/epoch code that must use the injected clock",
	Run:  runWallclock,
}

// wallclockPackages are the epoch-sensitive packages, matched by import
// path suffix so the fixture packages in testdata exercise the rule too.
var wallclockPackages = []string{
	"internal/rp",
	"internal/cert",
	"internal/manifest",
}

func epochSensitive(path string) bool {
	for _, suffix := range wallclockPackages {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

func runWallclock(pass *Pass) {
	if !epochSensitive(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(),
					"time.%s() reads the wall clock in epoch-sensitive package %s: use the injected clock so expiry semantics stay deterministic",
					fn.Name(), pass.Pkg.Path)
			}
			return true
		})
	}
}
