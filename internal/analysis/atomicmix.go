package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// atomicmix: a field accessed through sync/atomic in one code path and
// with plain loads/stores in another has no synchronization at all — the
// atomic calls merely hide the race from casual review, and the plain
// path may be in a different function, file, or package, which is why the
// race detector only catches it when a test happens to interleave the two.
// This rule aggregates every access to every struct field and
// package-level variable across the whole program: any location accessed
// both ways is reported at each plain site.
//
// Accesses inside the owning type's constructors (functions returning the
// type, and init functions) are exempt: before the value is published
// there is nothing to race with. The typed atomics (atomic.Uint64 and
// friends) make this rule structurally unnecessary — which is exactly why
// the repo prefers them — but the function-style API remains legal Go and
// one plain `x.n++` next to an `atomic.AddUint64(&x.n, 1)` is a real,
// silent corruption bug.
var atomicMixRule = &Rule{
	Name:       "atomicmix",
	Doc:        "location accessed via sync/atomic in one path and plain loads/stores in another, across the whole program",
	RunProgram: runAtomicMix,
}

type atomicAccess struct {
	pos  token.Pos
	fn   string
	name string // display name of the accessed location
}

func runAtomicMix(pp *ProgramPass) {
	prog := pp.Prog
	atomicSites := make(map[*types.Var][]atomicAccess)
	plainSites := make(map[*types.Var][]atomicAccess)

	for _, fi := range prog.Functions() {
		info := fi.Pkg.Info
		exempt := constructorLike(fi)
		// Pass 1: the &loc arguments of sync/atomic calls.
		viaAtomic := make(map[ast.Node]bool)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
					viaAtomic[ast.Unparen(un.X)] = true
				}
			}
			return true
		})
		// Pass 2: classify every use of a field or package-level var.
		record := func(n ast.Node, obj *types.Var, name string) {
			acc := atomicAccess{pos: n.Pos(), fn: FuncDisplayName(fi.Fn), name: name}
			if viaAtomic[n] {
				atomicSites[obj] = append(atomicSites[obj], acc)
			} else if !exempt {
				plainSites[obj] = append(plainSites[obj], acc)
			}
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				// Literal construction initializes, it does not race.
				return false
			case *ast.SelectorExpr:
				obj, ok := info.Uses[n.Sel].(*types.Var)
				if !ok || !obj.IsField() {
					return true
				}
				record(n, obj, fieldDisplayName(info, n, obj))
			case *ast.Ident:
				obj, ok := info.Uses[n].(*types.Var)
				if !ok || obj.IsField() || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
					return true
				}
				record(n, obj, obj.Pkg().Name()+"."+obj.Name())
			}
			return true
		})
	}

	var objs []*types.Var
	for obj := range atomicSites {
		if len(plainSites[obj]) > 0 {
			objs = append(objs, obj)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		at := atomicSites[obj]
		sort.Slice(at, func(i, j int) bool { return at[i].pos < at[j].pos })
		ex := prog.Fset.Position(at[0].pos)
		plains := plainSites[obj]
		sort.Slice(plains, func(i, j int) bool { return plains[i].pos < plains[j].pos })
		for _, p := range plains {
			pp.Reportf(p.pos,
				"%s is accessed with sync/atomic in %s (%s:%d) but with a plain load/store in %s: mixed access synchronizes nothing",
				p.name, at[0].fn, filepath.Base(ex.Filename), ex.Line, p.fn)
		}
	}
}

// fieldDisplayName renders a field access as Type.field using the
// receiver's static type.
func fieldDisplayName(info *types.Info, sel *ast.SelectorExpr, obj *types.Var) string {
	recv := info.TypeOf(sel.X)
	for {
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
			continue
		}
		break
	}
	if named, ok := recv.(*types.Named); ok {
		name := named.Obj().Name() + "." + obj.Name()
		if named.Obj().Pkg() != nil {
			name = named.Obj().Pkg().Name() + "." + name
		}
		return name
	}
	return obj.Name()
}

// constructorLike reports whether fi publishes new values rather than
// mutating shared ones: init functions and functions whose results
// include a named struct type declared in the same package (the
// constructor convention — the value is not yet visible to another
// goroutine).
func constructorLike(fi *FuncInfo) bool {
	if fi.Fn.Name() == "init" && fi.Fn.Type().(*types.Signature).Recv() == nil {
		return true
	}
	sig := fi.Fn.Type().(*types.Signature)
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		t := results.At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct && named.Obj().Pkg() == fi.Fn.Pkg() {
				return true
			}
		}
	}
	return false
}
