// Fixture for the deadlinebeforeio rule: naked conn I/O, deadline-free
// demotion to io.Reader, and discarded Set*Deadline errors are findings;
// armed I/O, armed demotion, and forwarding to conn-aware callees are not.
package deadline

import (
	"bufio"
	"net"
	"time"
)

func readNaked(conn net.Conn) {
	buf := make([]byte, 1)
	conn.Read(buf) // want: no dominating deadline
}

func readArmed(conn net.Conn) error {
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	buf := make([]byte, 1)
	_, err := conn.Read(buf)
	return err
}

func demote(conn net.Conn) *bufio.Reader {
	return bufio.NewReader(conn) // want: demoted to io.Reader, nothing armed
}

func demoteArmed(conn net.Conn) (*bufio.Reader, error) {
	if err := conn.SetDeadline(time.Now().Add(time.Second)); err != nil {
		return nil, err
	}
	return bufio.NewReader(conn), nil
}

func armUnchecked(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(time.Second)) // want: arm error discarded
	buf := make([]byte, 1)
	_, _ = conn.Read(buf)
}

func forward(conn net.Conn) {
	helper(conn) // callee keeps deadline control: analyzed there, not here
}

func helper(conn net.Conn) {
	_ = conn.Close()
}
