// Package atomicmix exercises the whole-program atomicmix rule: fields
// and package variables touched through sync/atomic in one function and
// with plain loads/stores in another.
package atomicmix

import "sync/atomic"

type Counter struct {
	n uint64
	m uint64
}

// IncAtomic bumps n through sync/atomic.
func (c *Counter) IncAtomic() { atomic.AddUint64(&c.n, 1) }

// ReadPlain reads the same field with a plain load: a silent race.
func (c *Counter) ReadPlain() uint64 { return c.n }

// IncM only ever touches m plainly: no finding.
func (c *Counter) IncM() { c.m++ }

// NewCounter initializes before publication: constructor accesses are
// exempt.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

var total uint64

func bumpTotal() { atomic.AddUint64(&total, 1) }

// totalPlain mixes a plain read of the package variable.
func totalPlain() uint64 { return total }

// readSuppressed documents its plain read with a well-formed suppression.
func readSuppressed(c *Counter) uint64 {
	//lint:ignore atomicmix fixture: snapshot read while writers are quiesced
	return c.n
}

// readBad tries to suppress without a reason: the directive is itself a
// finding and silences nothing.
func readBad(c *Counter) uint64 {
	//lint:ignore atomicmix
	return c.n
}
