// Fixture for the uncheckedverify rule: Verify*/Check*/Validate* calls
// whose error result is discarded must be findings; checked calls and
// non-verification names must not.
package uncheckedverify

import "errors"

// VerifyHash pretends to verify a digest.
func VerifyHash(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty")
	}
	return nil
}

// CheckPair returns a value alongside its verdict.
func CheckPair(b []byte) (int, error) {
	return len(b), VerifyHash(b)
}

// validateQuietly is lowercase: not a Verify*/Check*/Validate* API name.
func validateQuietly(b []byte) error {
	return VerifyHash(b)
}

func discards(data []byte) int {
	VerifyHash(data)        // want: bare statement discards the verdict
	_ = VerifyHash(data)    // want: blank assignment discards the verdict
	n, _ := CheckPair(data) // want: value kept, verdict blanked
	return n
}

func checks(data []byte) (int, error) {
	if err := VerifyHash(data); err != nil {
		return 0, err
	}
	_ = validateQuietly(data) // lowercase helper: not flagged
	return CheckPair(data)
}
