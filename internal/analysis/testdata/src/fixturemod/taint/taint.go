// Package taint exercises the interprocedural taintflow rule: flows from
// the wire subpackage's source cross this package's helpers before
// reaching the sink, so only a whole-program analysis can see them.
package taint

import (
	"net"
	"time"

	"fixturemod/taint/wire"
)

// relay reads a frame and forwards it with no validation anywhere on the
// chain: the finding lands on forward's Emit call.
func relay() { forward(wire.ReadFrame()) }

func forward(b []byte) { wire.Emit(b) }

// checked validates the frame before emitting: the sanitizer call
// cleanses the function, no finding.
func checked() {
	b := wire.ReadFrame()
	if wire.VerifyFrame(b) != nil {
		return
	}
	wire.Emit(b)
}

// bounded uses the marker-declared sanitizer.
func bounded() {
	wire.Emit(wire.BoundFrame(wire.ReadFrame()))
}

// FuzzParse is a source by naming convention and emits directly.
func FuzzParse() { wire.Emit(nil) }

// readConn is a source by the built-in rule: it reads bytes straight off
// a net.Conn.
func readConn(c net.Conn) []byte {
	if c.SetDeadline(time.Time{}) != nil {
		return nil
	}
	b := make([]byte, 64)
	if _, err := c.Read(b); err != nil {
		return nil
	}
	return b
}

func connFlow(c net.Conn) { wire.Emit(readConn(c)) }

// relayOK documents its flow with a well-formed suppression.
func relayOK() { forwardOK(wire.ReadFrame()) }

func forwardOK(b []byte) {
	//lint:ignore taintflow fixture: intentionally unsanitized flow under test
	wire.Emit(b)
}

// relayBad tries to suppress without a reason: the suppression is itself
// a finding and silences nothing.
func relayBad() { forwardBad(wire.ReadFrame()) }

func forwardBad(b []byte) {
	//lint:ignore taintflow
	wire.Emit(b)
}
