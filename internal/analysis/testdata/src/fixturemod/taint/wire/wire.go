// Package wire declares the taint roles for the fixture flows in the
// parent package: a marked source, a marked sink, sanitizers by name and
// by marker, and the malformed-marker cases.
package wire

// ReadFrame returns one frame off the peer connection.
//
//taint:source bytes a misbehaving peer controls
func ReadFrame() []byte { return []byte{0} }

// Emit hands a serialized frame to routers.
//
//taint:sink frames routers act on
func Emit(b []byte) { _ = b }

// VerifyFrame is a sanitizer by naming convention.
func VerifyFrame(b []byte) error {
	_ = b
	return nil
}

// BoundFrame is a sanitizer by marker.
//
//taint:sanitizer structural bounds check before use
func BoundFrame(b []byte) []byte { return b }

// Gadget carries an unknown marker kind.
//
//taint:gadget not a valid role
func Gadget() {}

// NakedSource has a marker with no description.
//
//taint:source
func NakedSource() []byte { return nil }
