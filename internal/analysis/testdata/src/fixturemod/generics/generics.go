// Package generics verifies the loader and rules handle type-parameterized
// code: generic functions and methods type-check, participate in the call
// graph, and name-convention rules see through instantiation.
package generics

import "fmt"

// Pipe passes each element through fn.
func Pipe[T any](in []T, fn func(T) T) []T {
	out := make([]T, len(in))
	for i, v := range in {
		out[i] = fn(v)
	}
	return out
}

// Box holds one value.
type Box[T any] struct{ v T }

// Get returns the boxed value.
func (b *Box[T]) Get() T { return b.v }

// CheckEqual fails when a and b differ.
func CheckEqual[T comparable](a, b T) error {
	if a != b {
		return fmt.Errorf("generics: %v != %v", a, b)
	}
	return nil
}

func use() {
	// The discarded verification verdict must be flagged through the
	// generic instantiation.
	CheckEqual(1, 2)
	b := &Box[int]{v: 3}
	_ = b.Get()
	_ = Pipe([]int{1}, func(x int) int { return x + b.Get() })
}
