// Fixture for the guardedby rule: an annotated field accessed without a
// preceding lock of its mutex is a finding, as is an annotation naming a
// mutex the struct does not have. Locked-suffix methods are exempt.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	// n counts events. guarded by mu.
	n int
	// misannotated claims a guard that is not a field. guarded by lock.
	misannotated int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) racy() int {
	return c.n // want: no preceding c.mu.Lock()
}

func (c *counter) readLocked() int {
	return c.n // caller holds the lock by convention
}
