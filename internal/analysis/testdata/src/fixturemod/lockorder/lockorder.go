// Package lockorder exercises the interprocedural lockorder rule:
// inconsistent acquisition order across two call chains, re-entry through
// a callee, and blocking operations (channels, conn I/O) under a held
// lock — including the variants only visible through the call graph.
package lockorder

import (
	"net"
	"sync"
	"time"
)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// lockAB takes A.mu then B.mu.
func (a *A) lockAB(b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockBA takes B.mu then — through a callee — A.mu: the opposite order,
// closing the cycle.
func (b *B) lockBA(a *A) {
	b.mu.Lock()
	lockA(a)
	b.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

type C struct{ mu sync.Mutex }

// outer re-enters its own lock through inner: self-deadlock.
func (c *C) outer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner()
}

func (c *C) inner() {
	c.mu.Lock()
	defer c.mu.Unlock()
}

// double locks the same mutex twice directly.
func (c *C) double() {
	c.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	c.mu.Unlock()
}

type D struct {
	mu sync.Mutex
	ch chan int
}

// blockSend performs a blocking channel send under the lock.
func (d *D) blockSend(v int) {
	d.mu.Lock()
	d.ch <- v
	d.mu.Unlock()
}

// okSend uses a non-blocking select: no finding.
func (d *D) okSend(v int) {
	d.mu.Lock()
	select {
	case d.ch <- v:
	default:
	}
	d.mu.Unlock()
}

// viaCallee blocks through a callee: only the call graph sees it.
func (d *D) viaCallee() {
	d.mu.Lock()
	d.waitOne()
	d.mu.Unlock()
}

func (d *D) waitOne() { <-d.ch }

// connWrite writes to a conn while holding the lock.
func (d *D) connWrite(c net.Conn, b []byte) {
	if c.SetDeadline(time.Time{}) != nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := c.Write(b); err != nil {
		return
	}
}

// unlockedSend releases before sending: no finding.
func (d *D) unlockedSend(v int) {
	d.mu.Lock()
	d.mu.Unlock()
	d.ch <- v
}

// sendSuppressed documents its blocking send with a well-formed
// suppression.
func (d *D) sendSuppressed(v int) {
	d.mu.Lock()
	//lint:ignore lockorder fixture: send is bounded by the test harness
	d.ch <- v
	d.mu.Unlock()
}

// sendBad tries to suppress without a reason: the directive is itself a
// finding and silences nothing.
func (d *D) sendBad(v int) {
	d.mu.Lock()
	//lint:ignore lockorder
	d.ch <- v
	d.mu.Unlock()
}
