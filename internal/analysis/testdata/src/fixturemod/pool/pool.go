// Package pool exercises the poolhygiene rule: sync.Pool.Put of a buffer
// whose aliases escaped the function must be flagged; value copies out of
// pooled scratch must not.
package pool

import "sync"

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

type envelope struct {
	Data []byte
}

// leakReturn returns the pooled backing array itself and then recycles it:
// the caller and the next Get now share bytes.
func leakReturn(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	buf := append((*bp)[:0], make([]byte, n)...)
	*bp = buf
	bufPool.Put(bp)
	return buf
}

// leakField parks an alias of the pooled buffer in a result struct before
// recycling it.
func leakField(n int) envelope {
	var env envelope
	bp := bufPool.Get().(*[]byte)
	buf := append((*bp)[:0], make([]byte, n)...)
	env.Data = buf
	*bp = buf
	bufPool.Put(bp)
	return env
}

// hashClean copies a value out of the pooled scratch before Put — the
// [4]byte element is a copy, not an alias — and must not be flagged.
func hashClean(n int) [4]byte {
	bp := bufPool.Get().(*[]byte)
	buf := append((*bp)[:0], make([]byte, n+4)...)
	var out [4]byte
	copy(out[:], buf)
	*bp = buf
	bufPool.Put(bp)
	return out
}
