// Fixture for //lint:ignore handling: a well-formed directive suppresses
// the finding below it (and is marked used); a directive naming an unknown
// rule or omitting its reason is itself a finding and suppresses nothing.
package suppress

import "errors"

// CheckThing returns a verdict the callers below mistreat.
func CheckThing() error { return errors.New("no") }

func wellFormed() {
	//lint:ignore uncheckedverify fixture demonstrates a reasoned exception
	CheckThing()
}

func unknownRule() {
	//lint:ignore nosuchrule the rule name is misspelled
	CheckThing()
}

func missingReason() {
	//lint:ignore uncheckedverify
	CheckThing()
}
