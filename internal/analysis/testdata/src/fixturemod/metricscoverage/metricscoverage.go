// Package metricscoverage exercises the metricscoverage rule: DiagKind's
// event table misses a constant, BreakerState has no table at all, and
// FetchDiag is fully covered (no finding).
package metricscoverage

import "fixturemod/obs"

// DiagKind classifies validation diagnostics.
type DiagKind int

// Diagnostic kinds.
const (
	DiagExpired DiagKind = iota
	DiagMissing
	DiagStale
)

// diagEvents covers only two of the three kinds.
var diagEvents = map[DiagKind]obs.EventKind{
	DiagExpired: obs.EventDiagnostic,
	DiagMissing: obs.EventDiagnostic,
}

// BreakerState is an observable enum with no event table anywhere.
type BreakerState int

// Breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
)

// FetchDiag is fully covered and must produce no finding.
type FetchDiag int

// Fetch diagnostics.
const (
	DiagFetchSlow FetchDiag = iota
	DiagFetchRefused
)

// fetchEvents covers every FetchDiag constant.
var fetchEvents = map[FetchDiag]obs.EventKind{
	DiagFetchSlow:    obs.EventRetry,
	DiagFetchRefused: obs.EventRetry,
}

// use keeps the tables referenced.
func use() (int, int) { return len(diagEvents), len(fetchEvents) }

var _ = use
