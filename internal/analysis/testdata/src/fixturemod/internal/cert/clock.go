// Fixture for the wallclock rule. The directory's import path ends in
// internal/cert, so it counts as epoch-sensitive: direct time.Now/Since
// calls are findings, while assigning time.Now as a clock value (the
// injection point) stays legal.
package cert

import "time"

// Clock is the injected time source.
type Clock func() time.Time

// DefaultClock hands out the wall clock as a value, not a call.
func DefaultClock() Clock { return time.Now }

func expired(notAfter time.Time) bool {
	return time.Now().After(notAfter) // want: wall-clock read
}

func age(at time.Time) time.Duration {
	return time.Since(at) // want: wall-clock read
}

func expiredInjected(notAfter time.Time, clock Clock) bool {
	return clock().After(notAfter)
}
