// Fixture for the boundeddecode rule. The directory's import path ends in
// internal/roa, so it counts as a decoder package: exported
// Parse*/Decode*/Unmarshal* functions taking attacker-sized []byte must
// compare len(input) against a Max* limit before consuming the input.
package roa

import "fmt"

// MaxInput is the hard input limit the well-behaved decoders enforce.
const MaxInput = 1 << 20

type limits struct{ MaxBody int }

// ParseBounded guards before consuming: legal.
func ParseBounded(der []byte) error {
	if len(der) > MaxInput {
		return fmt.Errorf("too big")
	}
	return walk(der)
}

// DecodeSelectorLimit guards against a selector-carried limit: legal.
func DecodeSelectorLimit(der []byte, l limits) error {
	if len(der) >= l.MaxBody {
		return fmt.Errorf("too big")
	}
	return walk(der)
}

// UnmarshalNaked never checks a limit. // want: no limit
func UnmarshalNaked(der []byte) error {
	return walk(der)
}

// ParseLate consumes the input before the guard. // want: guard after use
func ParseLate(der []byte) error {
	if err := walk(der); err != nil {
		return err
	}
	if len(der) > MaxInput {
		return fmt.Errorf("too big")
	}
	return nil
}

// ParseLenOnly measures the input before the guard — measuring is free, so
// this stays legal.
func ParseLenOnly(der []byte) error {
	n := len(der)
	if len(der) > MaxInput {
		return fmt.Errorf("too big")
	}
	_ = n
	return walk(der)
}

// ParseWrongBound compares against a non-limit identifier. // want: no limit
func ParseWrongBound(der []byte, hint int) error {
	if len(der) > hint {
		return fmt.Errorf("too big")
	}
	return walk(der)
}

// parseInternal is unexported: callers guard for it.
func parseInternal(der []byte) error { return walk(der) }

// Marshal does not match the decode prefixes: producing bytes is not the
// attack surface.
func Marshal(v int) []byte { return make([]byte, v) }

func walk(der []byte) error {
	var sum byte
	for _, b := range der {
		sum ^= b
	}
	_ = sum
	return nil
}
