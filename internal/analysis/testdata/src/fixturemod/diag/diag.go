// Fixture for the diagexhaustive rule: switches without default and string
// tables over a Diag* enum must handle every constant.
package diag

// DiagKind enumerates fixture diagnostics.
type DiagKind int

const (
	DiagExpired DiagKind = iota
	DiagMissing
	DiagStale
)

func describeTotal(k DiagKind) string {
	switch k {
	case DiagExpired:
		return "expired"
	case DiagMissing:
		return "missing"
	case DiagStale:
		return "stale"
	}
	return ""
}

func describePartial(k DiagKind) string {
	switch k { // want: misses DiagStale
	case DiagExpired:
		return "expired"
	case DiagMissing:
		return "missing"
	}
	return ""
}

func describeDefaulted(k DiagKind) string {
	switch k {
	case DiagExpired:
		return "expired"
	default:
		return "other"
	}
}

var partialNames = map[DiagKind]string{ // want: misses DiagStale
	DiagExpired: "expired",
	DiagMissing: "missing",
}

var allNames = map[DiagKind]string{
	DiagExpired: "expired",
	DiagMissing: "missing",
	DiagStale:   "stale",
}
