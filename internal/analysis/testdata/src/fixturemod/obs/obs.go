// Package obs is a minimal stand-in for the real observability package:
// the metricscoverage rule keys on the package name and on value types
// declared here.
package obs

// EventKind classifies flight-recorder events.
type EventKind int

// Stand-in event kinds.
const (
	EventRetry EventKind = iota
	EventBreakerOpen
	EventDiagnostic
)
