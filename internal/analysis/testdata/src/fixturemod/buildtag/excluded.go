//go:build neverbuild

// This file is excluded by its build constraint. If the loader ever picks
// it up, the discarded Verify error below becomes an uncheckedverify
// finding and the loader test fails.
package buildtag

import "errors"

// VerifyNothing always fails.
func VerifyNothing() error { return errors.New("excluded file") }

func dropped() {
	VerifyNothing()
}
