// Package buildtag verifies the loader honors //go:build constraints: the
// sibling excluded.go file carries findings but must never be loaded.
package buildtag

// Clean does nothing objectionable.
func Clean() int { return 1 }
