package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// guardedby: the concurrency-safety contracts of the rtr.Cache, the
// relying party's memo/LKG stores and the sync state are documented as
// "// guarded by <mu>" comments on struct fields. The race detector only
// catches violations on paths a test happens to race; this rule checks
// every access statically. A field annotated "guarded by mu" may only be
// read or written in a function that locks the same object's <mu>
// (<base>.<mu>.Lock() or .RLock() textually preceding the access — the
// stdlib-only approximation of dominance), or in a function whose name
// ends in "Locked" (the repo's convention for "caller holds the lock").
// An annotation naming a mutex field that does not exist in the struct is
// itself a finding — a guard contract pointing at nothing protects
// nothing.
var guardedByRule = &Rule{
	Name: "guardedby",
	Doc:  "field annotated '// guarded by <mu>' accessed without locking <mu>",
	Run:  runGuardedBy,
}

var guardedByPattern = regexp.MustCompile(`guarded by (\w+)`)

// guardedField records one annotation: the field object and the name of
// the mutex field guarding it.
type guardedField struct {
	mu string
}

func runGuardedBy(pass *Pass) {
	info := pass.Pkg.Info
	annotated := collectGuardedFields(pass)
	if len(annotated) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		idx := indexFuncs(file)
		// lockEvents caches, per function declaration, the positions of
		// every "<root>.Lock()" / "<root>.RLock()" call keyed by root.
		lockEvents := make(map[*ast.FuncDecl]map[string][]token.Pos)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok {
				return true
			}
			guard, ok := annotated[obj]
			if !ok {
				return true
			}
			fd := idx.enclosing(sel.Pos())
			if fd == nil {
				pass.Reportf(sel.Pos(),
					"%s is guarded by %s but accessed outside any function",
					obj.Name(), guard.mu)
				return true
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				return true // convention: caller holds the lock
			}
			base := types.ExprString(sel.X)
			root := base + "." + guard.mu
			events, ok := lockEvents[fd]
			if !ok {
				events = collectLockEvents(fd)
				lockEvents[fd] = events
			}
			held := false
			for _, p := range events[root] {
				if p < sel.Pos() {
					held = true
					break
				}
			}
			if !held {
				pass.Reportf(sel.Pos(),
					"%s.%s is guarded by %s but %s contains no preceding %s.Lock()",
					base, obj.Name(), guard.mu, fd.Name.Name, root)
			}
			return true
		})
	}
}

// collectGuardedFields scans struct declarations for "guarded by" field
// annotations, validating that the named mutex is a sibling field.
func collectGuardedFields(pass *Pass) map[*types.Var]guardedField {
	info := pass.Pkg.Info
	out := make(map[*types.Var]guardedField)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					siblings[name.Name] = true
				}
			}
			// An annotation on a field whose declaration line carries no
			// comment inherits the group's doc comment, so one "guarded by"
			// doc line can cover a block of fields.
			var pending string
			for _, field := range st.Fields.List {
				mu := ""
				if field.Doc != nil {
					if m := guardedByPattern.FindStringSubmatch(field.Doc.Text()); m != nil {
						mu = m[1]
						pending = m[1]
					} else {
						pending = ""
					}
				}
				if field.Comment != nil {
					if m := guardedByPattern.FindStringSubmatch(field.Comment.Text()); m != nil {
						mu = m[1]
					}
				}
				if mu == "" && field.Doc == nil && field.Comment == nil {
					mu = pending
				}
				if mu == "" {
					continue
				}
				if !siblings[mu] {
					pass.Reportf(field.Pos(),
						"'guarded by %s' names no field of this struct: the guard contract protects nothing", mu)
					continue
				}
				for _, name := range field.Names {
					if name.Name == mu {
						continue
					}
					if obj, ok := info.Defs[name].(*types.Var); ok {
						out[obj] = guardedField{mu: mu}
					}
				}
			}
			return true
		})
	}
	return out
}

// collectLockEvents finds every "<root>.Lock()" / "<root>.RLock()" call in
// fd, keyed by the printed root expression.
func collectLockEvents(fd *ast.FuncDecl) map[string][]token.Pos {
	events := make(map[string][]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		root := types.ExprString(sel.X)
		events[root] = append(events[root], call.Pos())
		return true
	})
	return events
}
