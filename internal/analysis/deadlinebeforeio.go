package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deadlinebeforeio: the Stalloris/slow-loris defense from the resilient-
// sync work is a prose invariant — "never touch a net.Conn without a
// deadline" — that one refactor can silently undo. The rule checks, per
// top-level function (closures included):
//
//  1. a direct Read/Write/ReadFrom/WriteTo on a conn-typed value must be
//     dominated (textually preceded, the stdlib-only approximation of
//     dominance) by a Set{,Read,Write}Deadline call on the same value;
//  2. demoting a conn to a plain io.Reader/io.Writer — passing it to a
//     parameter that can no longer arm deadlines, e.g. bufio.NewReader or
//     fmt.Fprintf — requires the function to arm a deadline somewhere,
//     because after the demotion nobody else can. Forwarding the conn to a
//     conn-aware callee (parameter keeps SetDeadline) is fine: the callee
//     is itself analyzed;
//  3. a Set*Deadline call whose error result is discarded is a finding in
//     its own right: a deadline that silently failed to arm (closed or
//     hijacked conn) is an unbounded read wearing a seatbelt sticker. The
//     fix is to drop the connection, not to ignore the error.
var deadlineBeforeIORule = &Rule{
	Name: "deadlinebeforeio",
	Doc:  "I/O on a net.Conn without a dominating Set{,Read,Write}Deadline (slow-loris defense)",
	Run:  runDeadlineBeforeIO,
}

func isDeadlineMethod(name string) bool {
	return name == "SetDeadline" || name == "SetReadDeadline" || name == "SetWriteDeadline"
}

func isIOMethod(name string) bool {
	return name == "Read" || name == "Write" || name == "ReadFrom" || name == "WriteTo"
}

func runDeadlineBeforeIO(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeadlines(pass, fd)
		}
	}
	_ = info
}

func checkDeadlines(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	discards := blankDiscards(fd.Body)

	// Pass 1: collect every deadline-arming call, keyed by the printed
	// receiver expression ("conn", "pc.conn", ...).
	armed := make(map[string][]token.Pos)
	anyArm := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isDeadlineMethod(sel.Sel.Name) {
			return true
		}
		recv := info.Types[sel.X].Type
		if recv == nil || !canArmDeadline(recv) {
			return true
		}
		root := types.ExprString(sel.X)
		armed[root] = append(armed[root], call.Pos())
		anyArm = true
		// Invariant 3: the arming itself must be checked.
		if blanks, present := discards[call]; discardsIndex(blanks, present, 0) {
			pass.Reportf(call.Pos(),
				"%s.%s error discarded: a deadline that failed to arm leaves the conn unbounded — drop the connection instead",
				root, sel.Sel.Name)
		}
		return true
	})
	armedBefore := func(root string, pos token.Pos) bool {
		for _, p := range armed[root] {
			if p < pos {
				return true
			}
		}
		return false
	}

	// Pass 2: direct I/O methods and demotions.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isIOMethod(sel.Sel.Name) {
			if recv := info.Types[sel.X].Type; recv != nil && isConnLike(recv) {
				root := types.ExprString(sel.X)
				if !armedBefore(root, call.Pos()) {
					pass.Reportf(call.Pos(),
						"%s.%s on a net.Conn with no dominating Set{,Read,Write}Deadline in %s: unbounded I/O is the slow-loris attack surface",
						root, sel.Sel.Name, fd.Name.Name)
				}
			}
		}
		checkDemotions(pass, fd, call, anyArm)
		return true
	})
}

// checkDemotions flags conn arguments handed to parameters that can no
// longer arm deadlines, unless the function sets a deadline somewhere.
func checkDemotions(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, anyArm bool) {
	if anyArm {
		return
	}
	info := pass.Pkg.Info
	var sig *types.Signature
	if tv, ok := info.Types[call.Fun]; ok {
		if s, ok := tv.Type.Underlying().(*types.Signature); ok && !tv.IsType() {
			sig = s
		} else if tv.IsType() {
			// Conversion: demotion iff the target type loses deadline control.
			for _, arg := range call.Args {
				at := info.Types[arg].Type
				if at != nil && isConnLike(at) && !canArmDeadline(tv.Type) {
					pass.Reportf(arg.Pos(),
						"conn %s converted to %s (no deadline control) in %s, which never arms a deadline",
						types.ExprString(arg), tv.Type.String(), fd.Name.Name)
				}
			}
			return
		}
	}
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		at := info.Types[arg].Type
		if at == nil || !isConnLike(at) {
			continue
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || canArmDeadline(pt) {
			continue // forwarded to a conn-aware callee: analyzed there
		}
		pass.Reportf(arg.Pos(),
			"conn %s demoted to %s by call to %s in %s, which never arms a deadline: wrap-then-read with no deadline is unbounded I/O",
			types.ExprString(arg), pt.String(), types.ExprString(call.Fun), fd.Name.Name)
	}
}
