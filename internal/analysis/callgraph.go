package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-program view the interprocedural rules
// (taintflow, lockorder, atomicmix) run on: a call graph over every
// function of every analyzed package, resolved with class-hierarchy
// analysis (CHA) so calls through interfaces fan out to every concrete
// method in the program that could be behind them.
//
// The paper's propagation risk is interprocedural by nature — a byte slice
// read off a repository connection crosses three helpers before it is
// serialized to a router — so per-function syntactic rules cannot see it.
// The Program is the shared substrate: built once per Run, handed to every
// rule with a RunProgram hook, with a FactStore so rules publish and
// consume per-function summaries instead of re-deriving them.

// Program is the whole-program view over one Run's packages.
type Program struct {
	// Pkgs are the analyzed packages, in the order given to Run.
	Pkgs []*Package
	// Fset is the file set shared by every package.
	Fset *token.FileSet
	// Funcs maps every declared function or method (with a body) in the
	// analyzed packages to its info.
	Funcs map[*types.Func]*FuncInfo
	// Facts is the shared per-function fact store.
	Facts *FactStore

	order []*FuncInfo
}

// FuncInfo is one declared function with its resolved outgoing calls.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls are the resolved outgoing call edges, in source order. Calls
	// inside nested function literals are attributed to the declaring
	// function (the closure runs with its captures; for the summary-based
	// rules that is the right over-approximation).
	Calls []Call
}

// Call is one resolved call edge.
type Call struct {
	// Callee is the invoked function. For interface method calls this is
	// one of possibly several CHA-resolved concrete methods.
	Callee *types.Func
	// Pos is the call site.
	Pos token.Pos
	// ViaInterface marks edges resolved by class-hierarchy analysis
	// rather than a direct static call.
	ViaInterface bool
	// Async marks calls that do not run inline on the caller's
	// goroutine: the call sits inside a function literal that is not
	// immediately invoked (go statements, deferred closures, stored
	// callbacks).
	Async bool
	// CarriesBytes marks calls whose callee can receive raw payload bytes
	// through its signature — a parameter or receiver typed []byte, an
	// io.Reader-shaped interface, or a container of either. Taint
	// propagates only along such edges.
	CarriesBytes bool
}

// Functions returns every function in the program in deterministic order
// (package path, then source position).
func (prog *Program) Functions() []*FuncInfo {
	return prog.order
}

// FuncDisplayName renders fn for findings: "pkg.Name" for functions,
// "pkg.Recv.Name" for methods (pointer receivers stripped), stable across
// runs.
func FuncDisplayName(fn *types.Func) string {
	if fn == nil {
		return "<unknown>"
	}
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// BuildProgram constructs the call graph over pkgs. It is deterministic:
// functions are ordered by package path then position, and CHA targets are
// sorted by display name.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:  pkgs,
		Funcs: make(map[*types.Func]*FuncInfo),
		Facts: NewFactStore(),
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}

	// Pass 1: index every declared function.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg}
				prog.Funcs[fn] = fi
				prog.order = append(prog.order, fi)
			}
		}
	}
	sort.Slice(prog.order, func(i, j int) bool {
		a, b := prog.order[i], prog.order[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})

	cha := newCHAIndex(prog)

	// Pass 2: resolve call edges.
	for _, fi := range prog.order {
		fi.Calls = collectCalls(prog, cha, fi)
	}
	return prog
}

// chaIndex supports class-hierarchy analysis: for an interface method
// call, every concrete method in the program whose receiver type
// implements the interface is a possible target.
type chaIndex struct {
	// methodsByName maps a method name to every declared concrete method
	// with that name.
	methodsByName map[string][]*types.Func
}

func newCHAIndex(prog *Program) *chaIndex {
	idx := &chaIndex{methodsByName: make(map[string][]*types.Func)}
	for _, fi := range prog.order {
		sig, _ := fi.Fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			continue
		}
		idx.methodsByName[fi.Fn.Name()] = append(idx.methodsByName[fi.Fn.Name()], fi.Fn)
	}
	return idx
}

// resolveInterface returns the concrete in-program methods an interface
// method call could dispatch to, sorted for determinism.
func (idx *chaIndex) resolveInterface(iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	for _, m := range idx.methodsByName[name] {
		recv := m.Type().(*types.Signature).Recv().Type()
		if types.Implements(recv, iface) {
			out = append(out, m)
			continue
		}
		// Value receivers also satisfy through the pointer type.
		if _, isPtr := recv.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(recv), iface) {
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := FuncDisplayName(out[i]), FuncDisplayName(out[j])
		if a != b {
			return a < b
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}

// collectCalls resolves every call in fi's body (closures included,
// attributed to fi; calls inside non-immediately-invoked literals are
// marked Async).
func collectCalls(prog *Program, cha *chaIndex, fi *FuncInfo) []Call {
	info := fi.Pkg.Info
	inline := inlineInvokedLits(fi.Decl)
	var calls []Call
	var walk func(n ast.Node, async bool)
	walk = func(n ast.Node, async bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Immediately-invoked literals run inline; anything else
				// runs later (go/defer/stored callback).
				walk(n.Body, async || !inline[n])
				return false
			case *ast.CallExpr:
				calls = append(calls, resolveCall(prog, cha, info, n, async)...)
			}
			return true
		})
	}
	walk(fi.Decl.Body, false)
	sort.SliceStable(calls, func(i, j int) bool { return calls[i].Pos < calls[j].Pos })
	return calls
}

// inlineInvokedLits returns the function literals in fd that execute
// inline at their declaration site: "func(){...}()" call operands, except
// under go or defer statements (those run on another goroutine or at
// function exit).
func inlineInvokedLits(fd *ast.FuncDecl) map[*ast.FuncLit]bool {
	deferred := make(map[*ast.CallExpr]bool)
	inline := make(map[*ast.FuncLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			deferred[n.Call] = true
		case *ast.DeferStmt:
			deferred[n.Call] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || deferred[call] {
			return true
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			inline[lit] = true
		}
		return true
	})
	return inline
}

// resolveCall maps one call expression to zero or more edges.
func resolveCall(prog *Program, cha *chaIndex, info *types.Info, call *ast.CallExpr, async bool) []Call {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []Call{{Callee: fn, Pos: call.Pos(), Async: async, CarriesBytes: signatureCarriesBytes(fn)}}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		// Interface method call: CHA fan-out to concrete methods, keeping
		// the abstract callee too (its name carries the contract even when
		// no in-program type implements it).
		if sel, ok := info.Selections[fun]; ok {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				out := []Call{{Callee: fn, Pos: call.Pos(), Async: async, CarriesBytes: signatureCarriesBytes(fn)}}
				for _, impl := range cha.resolveInterface(iface, fn.Name()) {
					out = append(out, Call{Callee: impl, Pos: call.Pos(), ViaInterface: true, Async: async, CarriesBytes: signatureCarriesBytes(impl)})
				}
				return out
			}
		}
		return []Call{{Callee: fn, Pos: call.Pos(), Async: async, CarriesBytes: signatureCarriesBytes(fn)}}
	}
	return nil
}

// signatureCarriesBytes reports whether fn can receive raw payload bytes
// through its signature: a parameter or receiver that is byte-carrying.
// What matters is the callee's declared view, not the call site's argument
// types — handing a net.Conn to a func(io.Writer) gives the callee no way
// to read attacker bytes from it. Plain strings and flat structs are
// deliberately excluded: at function granularity, following every string or
// struct argument would taint orchestration calls ("start this server",
// "install these parsed VRPs") that move no payload.
func signatureCarriesBytes(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	if recv := sig.Recv(); recv != nil && byteCarrying(recv.Type(), 0) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if byteCarrying(sig.Params().At(i).Type(), 0) {
			return true
		}
	}
	return false
}

// byteCarrying reports whether t is []byte, an io.Reader-shaped interface,
// or a container (slice, array, map, chan, pointer) of either.
func byteCarrying(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
			return true
		}
		return byteCarrying(u.Elem(), depth+1)
	case *types.Array:
		return byteCarrying(u.Elem(), depth+1)
	case *types.Map:
		return byteCarrying(u.Key(), depth+1) || byteCarrying(u.Elem(), depth+1)
	case *types.Chan:
		return byteCarrying(u.Elem(), depth+1)
	case *types.Pointer:
		return byteCarrying(u.Elem(), depth+1)
	case *types.Interface:
		for i := 0; i < u.NumMethods(); i++ {
			if u.Method(i).Name() == "Read" {
				return true
			}
		}
	}
	return false
}

// markerDirective is one "//taint:..."-style classification on a function
// declaration.
type markerDirective struct {
	Kind   string // e.g. "source", "sink", "sanitizer"
	Reason string
	Pos    token.Pos
}

// funcMarkers parses "//<ns>:<kind> <reason>" directives from fd's doc
// comment. Unknown kinds and missing reasons are NOT validated here — the
// consuming rule reports them so the finding carries the rule name.
func funcMarkers(fd *ast.FuncDecl, ns string) []markerDirective {
	if fd.Doc == nil {
		return nil
	}
	var out []markerDirective
	prefix := "//" + ns + ":"
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, prefix)
		if !ok {
			continue
		}
		kind, reason, _ := strings.Cut(rest, " ")
		out = append(out, markerDirective{Kind: kind, Reason: strings.TrimSpace(reason), Pos: c.Pos()})
	}
	return out
}
