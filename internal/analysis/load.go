// Package analysis is a stdlib-only static-analysis framework plus the
// domain-specific rules that mechanically enforce this repository's
// misbehaving-authority safety invariants (see DESIGN.md §8).
//
// The paper's core observation is that RPKI safety collapses when an
// authority's misbehavior goes unnoticed; this repository's own safety
// rests on hand-maintained invariants ("never discard a Verify error",
// "never touch a net.Conn without a deadline", "never read the wall clock
// inside validity-epoch math") that rot just as silently. The analysis
// package turns those prose invariants into compiler-grade checks: every
// package in the module is parsed (go/parser) and type-checked (go/types
// with the source importer — no golang.org/x/tools dependency), and each
// rule walks the typed ASTs reporting findings as file:line: [rule] message.
//
// Deliberate exceptions are declared in the code with
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// on (or immediately above) the offending line. Suppressions are counted
// and printed, and a suppression that names an unknown rule or omits its
// reason is itself a finding — an unexplained exception is exactly the
// kind of silent rot the suite exists to prevent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the package's import path ("repro/internal/rp").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test Go files, in file-name order.
	Files []*ast.File
	// Fset is the file set shared by every package of one Loader.
	Fset *token.FileSet
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems (the analysis still runs
	// on a best-effort basis, but the driver reports them).
	TypeErrors []error
}

// Loader loads and type-checks the packages of one module. Imports inside
// the module are resolved by the Loader itself (recursively loading the
// imported package); everything else — the standard library — is resolved
// by go/importer's source importer, so the module stays dependency-free.
type Loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.ImporterFrom

	mu      sync.Mutex
	pkgs    map[string]*Package
	loading map[string]bool
}

var disableCgoOnce sync.Once

// The standard library is type-checked from source exactly once per
// process: every Loader shares one FileSet and one source importer, so a
// test binary (or driver) creating several Loaders — fixtures, self-run,
// CLI — pays the stdlib cost a single time instead of per Loader. The
// importer memoizes internally but is not documented as concurrency-safe,
// so a process-wide mutex serializes imports across Loaders.
var sharedStd struct {
	once sync.Once
	fset *token.FileSet
	mu   sync.Mutex
	imp  types.ImporterFrom
}

func sharedStdImporter() (*token.FileSet, types.ImporterFrom) {
	sharedStd.once.Do(func() {
		sharedStd.fset = token.NewFileSet()
		sharedStd.imp = importer.ForCompiler(sharedStd.fset, "source", nil).(types.ImporterFrom)
	})
	return sharedStd.fset, lockedImporter{}
}

// lockedImporter serializes access to the shared source importer.
type lockedImporter struct{}

func (lockedImporter) Import(path string) (*types.Package, error) {
	return lockedImporter{}.ImportFrom(path, "", 0)
}

func (lockedImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	sharedStd.mu.Lock()
	defer sharedStd.mu.Unlock()
	return sharedStd.imp.ImportFrom(path, srcDir, mode)
}

// NewLoader creates a loader for the module rooted at modRoot (the
// directory containing go.mod) with the given module path.
func NewLoader(modRoot, modPath string) *Loader {
	// The source importer type-checks the standard library from source via
	// go/build; with cgo disabled every package (net included) resolves to
	// its pure-Go form, which is all the analysis needs.
	disableCgoOnce.Do(func() { build.Default.CgoEnabled = false })
	l := &Loader{
		modRoot: modRoot,
		modPath: modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.fset, l.std = sharedStdImporter()
	return l
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ModulePackages discovers every package directory in the module (skipping
// testdata, hidden and underscore directories) and loads each one. The
// result is sorted by import path.
func (l *Loader) ModulePackages() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.modRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads a single package from an arbitrary directory under the
// given import path. Used by the analyzer regression tests to load fixture
// packages out of testdata (where the go tool will not build them).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.loadFrom(importPath, dir)
}

// load loads the module package with the given import path (memoized).
func (l *Loader) load(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
	return l.loadFrom(path, dir)
}

func (l *Loader) loadFrom(path, dir string) (*Package, error) {
	l.mu.Lock()
	if pkg, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return pkg, nil
	}
	if l.loading[path] {
		l.mu.Unlock()
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.loading, path)
		l.mu.Unlock()
	}()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect //go:build constraints and GOOS/GOARCH file suffixes the
		// same way the go tool does: an excluded file must not contribute
		// declarations (or findings) to the package.
		if ok, merr := build.Default.MatchFile(dir, name); merr != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset}
	for _, name := range names {
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, file)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: importerFunc(func(importPath, srcDir string) (*types.Package, error) {
			if importPath == l.modPath || strings.HasPrefix(importPath, l.modPath+"/") {
				sub, err := l.load(importPath)
				if err != nil {
					return nil, err
				}
				return sub.Types, nil
			}
			return l.std.ImportFrom(importPath, srcDir, 0)
		}),
		Error: func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check's error is redundant here: every problem also lands in
	// TypeErrors via the Error callback, and the (partial) package is still
	// analyzed best-effort.
	//lint:ignore uncheckedverify type errors are collected via the types.Config.Error callback above
	pkg.Types, _ = conf.Check(path, l.fset, pkg.Files, pkg.Info)

	l.mu.Lock()
	l.pkgs[path] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// importerFunc adapts a function to types.ImporterFrom.
type importerFunc func(path, srcDir string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path, "") }
func (f importerFunc) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	return f(path, srcDir)
}
