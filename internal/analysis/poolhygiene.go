package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolhygiene: a sync.Pool buffer returned with Put may be handed to any
// later Get — concurrently, from any goroutine. If an alias of the pooled
// memory escaped the function first (returned, stored into a field, map or
// package variable, or sent on a channel), the escapee and the next Get
// holder now share bytes, and the resulting corruption shows up far from
// either site. The streaming validator leans on pooled scratch (the rp
// hashing pass, the cms SET-OF scratch), so the invariant is checked
// statically: inside any function that calls Put, the rule tracks the
// pooled pointer and everything assigned from it (dereferences, subslices,
// append chains) and flags the Put when an alias flows somewhere that
// outlives the call. Value copies are not aliases — storing sums[i] (a
// [32]byte) into a result map is fine; storing sums itself is not.
var poolHygieneRule = &Rule{
	Name: "poolhygiene",
	Doc:  "sync.Pool.Put of a buffer whose aliases escape the function (retained in results, fields, or channels)",
	Run:  runPoolHygiene,
}

func runPoolHygiene(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPoolFunc(pass, fd)
			}
		}
	}
}

// poolEscape is one place an alias of pooled memory leaves the function.
type poolEscape struct {
	pos  token.Pos
	desc string
}

func checkPoolFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Pass 1: find sync.Pool Put calls and seed the alias set with their
	// arguments and with every variable assigned from a Get.
	type putCall struct {
		call *ast.CallExpr
		arg  string
	}
	var puts []putCall
	aliases := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Put" {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				aliases[obj] = true
				puts = append(puts, putCall{call: call, arg: id.Name})
			}
		}
		return true
	})
	if len(puts) == 0 {
		return
	}

	isLocal := func(obj types.Object) bool {
		return obj != nil && fd.Pos() <= obj.Pos() && obj.Pos() <= fd.End()
	}

	// aliasExpr reports whether evaluating e yields a view of pooled memory:
	// the pooled variable itself, a dereference or subslice of it, an append
	// chain seeded from it, or an element access that still carries pointers
	// into it. Element reads of value type (sums[i] as a [32]byte) are
	// copies, not aliases.
	var aliasExpr func(e ast.Expr) bool
	aliasExpr = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			return aliases[info.Uses[e]]
		case *ast.ParenExpr:
			return aliasExpr(e.X)
		case *ast.StarExpr:
			return aliasExpr(e.X)
		case *ast.SliceExpr:
			return aliasExpr(e.X)
		case *ast.UnaryExpr:
			return e.Op == token.AND && aliasExpr(e.X)
		case *ast.IndexExpr:
			return pointerLike(info.TypeOf(e)) && aliasExpr(e.X)
		case *ast.SelectorExpr:
			return pointerLike(info.TypeOf(e)) && aliasExpr(e.X)
		case *ast.TypeAssertExpr:
			return aliasExpr(e.X)
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if aliasExpr(elt) {
					return true
				}
			}
			return false
		case *ast.CallExpr:
			// append(alias, ...) usually returns the same backing array.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" && len(e.Args) > 0 {
					return aliasExpr(e.Args[0])
				}
			}
			return false
		}
		return false
	}

	// isPoolGet reports whether e is a sync.Pool Get call (possibly behind a
	// type assertion), so its destination seeds the alias set.
	isPoolGet := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			e = ast.Unparen(ta.X)
		}
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeFunc(info, call)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Get"
	}

	// Pass 2: propagate aliases through assignments to a fixpoint. The set
	// is flow-insensitive — once an alias, always an alias — which errs on
	// the side of reporting.
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	for changed, rounds := true, 0; changed && rounds < 8; rounds++ {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				obj := lhsObj(lhs)
				if obj == nil || aliases[obj] {
					continue
				}
				if isPoolGet(as.Rhs[i]) || (aliasExpr(as.Rhs[i]) && pointerLike(info.TypeOf(lhs))) {
					aliases[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Pass 3: find escapes — aliases flowing somewhere that outlives the
	// call. Stores INTO pooled memory (*bp = buf, sums[i] = x) are the
	// normal give-back pattern and stay legal; stores into locals propagate
	// (pass 2 and the base-marking below); everything else escapes.
	var escapes []poolEscape
	pos := pass.Pkg.Fset.Position
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if aliasExpr(res) {
					escapes = append(escapes, poolEscape{res.Pos(), "returned"})
				}
			}
		case *ast.SendStmt:
			if aliasExpr(n.Value) {
				escapes = append(escapes, poolEscape{n.Value.Pos(), "sent on a channel"})
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !aliasExpr(n.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if obj := lhsObj(l); obj != nil && !isLocal(obj) {
						escapes = append(escapes, poolEscape{lhs.Pos(), "stored in package variable " + l.Name})
					}
				case *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
					var base ast.Expr
					switch l := l.(type) {
					case *ast.StarExpr:
						base = l.X
					case *ast.SelectorExpr:
						base = l.X
					case *ast.IndexExpr:
						base = l.X
					}
					if aliasExpr(base) {
						continue // writing back into pooled memory
					}
					bobj := lhsObj(base)
					baseType := info.TypeOf(base)
					_, basePtr := baseType.Underlying().(*types.Pointer)
					if bobj != nil && isLocal(bobj) && !basePtr {
						// A local value now holds pooled memory: treat the
						// local as an alias so returning it is caught.
						if !aliases[bobj] {
							aliases[bobj] = true
						}
						continue
					}
					escapes = append(escapes, poolEscape{lhs.Pos(), "stored in " + types.ExprString(l)})
				}
			}
		}
		return true
	})
	if len(escapes) == 0 {
		return
	}
	first := escapes[0]
	for _, e := range escapes[1:] {
		if e.pos < first.pos {
			first = e
		}
	}
	for _, put := range puts {
		pass.Reportf(put.call.Pos(),
			"%s is returned to the pool but an alias of the pooled memory escapes %s (%s at line %d): the next Get shares bytes with the escapee",
			put.arg, fd.Name.Name, first.desc, pos(first.pos).Line)
	}
}

// pointerLike reports whether values of t carry pointers into backing
// memory — assigning one creates an alias rather than a copy.
func pointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return pointerLike(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerLike(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}
