package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function object a call invokes, or nil for
// conversions, built-ins, and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isErrorType reports whether t is the built-in error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errorResults returns the indices of error-typed results in sig.
func errorResults(sig *types.Signature) []int {
	var out []int
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			out = append(out, i)
		}
	}
	return out
}

// hasMethods reports whether t's method set (including the pointer method
// set for non-interface types) contains every named method.
func hasMethods(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	for _, name := range names {
		found := false
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// isConnLike reports whether t behaves as a net.Conn for the purposes of
// the deadlinebeforeio rule: it can Read and Write, it can arm deadlines,
// and it has network addresses. Matching on the method set instead of the
// literal net.Conn interface also covers concrete conn types
// (*net.TCPConn, test fakes, the fault-injection wrappers in
// internal/repo); requiring LocalAddr/RemoteAddr keeps *os.File — which
// also has SetDeadline — out of scope.
func isConnLike(t types.Type) bool {
	return hasMethods(t, "Read", "Write", "SetDeadline", "SetReadDeadline", "SetWriteDeadline",
		"LocalAddr", "RemoteAddr")
}

// canArmDeadline reports whether a value of type t still exposes deadline
// control — used to distinguish forwarding a conn (fine: the callee is
// itself analyzed) from demoting it to a plain io.Reader/io.Writer.
func canArmDeadline(t types.Type) bool {
	return hasMethods(t, "SetDeadline")
}

// blankDiscards maps call expressions appearing as statements to the set of
// result indices whose values are discarded: all of them for a bare
// expression (or go/defer) statement, and the blank-assigned positions of
// an assignment. Calls nested inside larger expressions never appear — the
// value is used.
func blankDiscards(body *ast.BlockStmt) map[*ast.CallExpr][]int {
	out := make(map[*ast.CallExpr][]int)
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				out[call] = nil // nil means "every result"
			}
		case *ast.GoStmt:
			out[stmt.Call] = nil
		case *ast.DeferStmt:
			out[stmt.Call] = nil
		case *ast.AssignStmt:
			if len(stmt.Rhs) == 1 {
				if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok {
					var blanks []int
					for i, lhs := range stmt.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
							blanks = append(blanks, i)
						}
					}
					if len(blanks) > 0 {
						out[call] = blanks
					}
				}
				return true
			}
			for i, rhs := range stmt.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(stmt.Lhs) {
					continue
				}
				if id, ok := stmt.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					out[call] = []int{0}
				}
			}
		}
		return true
	})
	return out
}

// discardsIndex reports whether the discard set (from blankDiscards) drops
// result index i.
func discardsIndex(blanks []int, present bool, i int) bool {
	if !present {
		return false
	}
	if blanks == nil {
		return true // statement call: every result discarded
	}
	for _, b := range blanks {
		if b == i {
			return true
		}
	}
	return false
}
