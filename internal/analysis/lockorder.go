package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// lockorder audits how the repository's mutexes compose: PR 9's sharded
// subscriber table, the RTR cache's main/propagation locks, and the
// relying party's memo/LKG stores each hold their own lock correctly in
// isolation (guardedby checks that), but a deadlock is a property of the
// *composition* — lock A taken while holding B in one call chain and B
// while holding A in another, or any lock held across an operation that
// can stall on a misbehaving peer.
//
// The rule derives, per function, an ordered event list — mutex
// Lock/RLock/Unlock calls on struct-field or package-level sync.Mutex/
// RWMutex values, blocking channel operations (sends, receives and
// selects without a default arm, ranges over channels), direct conn
// reads/writes — plus the resolved call sites. Per-function summaries
// ("may acquire these locks", "may block") propagate through the call
// graph to a fixpoint; each function is then simulated in textual order:
//
//   - acquiring L while holding H adds the edge H→L to the global
//     lock-order graph; cycles in that graph are reported as potential
//     deadlocks;
//   - acquiring (or calling a function that may acquire) a lock already
//     held is reported: sync mutexes are not reentrant, and for sharded
//     locks the same static identity means a possible same-shard
//     re-entry;
//   - blocking — directly or via a callee that may block — while holding
//     any lock is reported: a stalled router or repository must never
//     extend its stall into a lock everyone else needs.
//
// Locks are identified statically as pkg.Type.field (or pkg.var); two
// shard instances of one field share an identity, which errs toward
// reporting. Events on goroutines spawned inside the function (go
// statements, deferred or stored closures) are not attributed to the
// caller's goroutine and are analyzed only through the functions they
// call.
var lockOrderRule = &Rule{
	Name:       "lockorder",
	Doc:        "lock-order cycles, same-lock re-entry, and locks held across blocking operations, over the whole-program call graph",
	RunProgram: runLockOrder,
}

type lockEventKind int

const (
	evAcquire lockEventKind = iota
	evRelease
	evBlock
	evCall
)

type lockEvent struct {
	kind  lockEventKind
	pos   token.Pos
	lock  string // acquire/release
	rlock bool   // acquire via RLock
	what  string // block: "channel send", "conn write", ...
	call  *types.Func
}

// lockOrderSummary is the per-function fact published to the store.
type lockOrderSummary struct {
	events []lockEvent
	// mayAcquire maps every lock this function (or a transitive callee,
	// once the fixpoint completes) can acquire to one example site.
	mayAcquire map[string]token.Pos
	// mayBlock names the first blocking operation reachable from this
	// function on the calling goroutine ("" if none).
	mayBlock string
}

const lockOrderFactKey = "lockorder.summary"

func runLockOrder(pp *ProgramPass) {
	prog := pp.Prog

	// Phase 1: intrinsic per-function summaries.
	summaries := make(map[*types.Func]*lockOrderSummary)
	for _, fi := range prog.Functions() {
		s := collectLockOrderSummary(fi)
		summaries[fi.Fn] = s
		prog.Facts.Publish(fi.Fn, lockOrderFactKey, s)
	}

	// Phase 2: transitive closure of mayAcquire/mayBlock over call edges.
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.Functions() {
			s := summaries[fi.Fn]
			for _, ev := range s.events {
				if ev.kind != evCall {
					continue
				}
				cs := summaries[ev.call]
				if cs == nil {
					continue
				}
				for lock := range cs.mayAcquire {
					if _, ok := s.mayAcquire[lock]; !ok {
						s.mayAcquire[lock] = ev.pos
						changed = true
					}
				}
				if s.mayBlock == "" && cs.mayBlock != "" {
					s.mayBlock = cs.mayBlock + " (via " + FuncDisplayName(ev.call) + ")"
					changed = true
				}
			}
		}
	}

	// Phase 3: simulate each function, building the global lock-order
	// graph and reporting local hazards.
	edges := make(map[string]map[string]lockEdgeSite)
	addEdge := func(from, to string, pos token.Pos, fn string) {
		if from == to {
			return
		}
		m := edges[from]
		if m == nil {
			m = make(map[string]lockEdgeSite)
			edges[from] = m
		}
		if _, ok := m[to]; !ok {
			m[to] = lockEdgeSite{pos: pos, fn: fn}
		}
	}

	for _, fi := range prog.Functions() {
		s := summaries[fi.Fn]
		fname := FuncDisplayName(fi.Fn)
		type heldLock struct {
			lock  string
			rlock bool
			line  int
		}
		var held []heldLock
		holdsDesc := func() string {
			names := make([]string, len(held))
			for i, h := range held {
				names[i] = h.lock
			}
			return strings.Join(names, ", ")
		}
		reported := make(map[string]bool)
		reportOnce := func(pos token.Pos, format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			if !reported[msg] {
				reported[msg] = true
				pp.Reportf(pos, "%s", msg)
			}
		}
		for _, ev := range s.events {
			switch ev.kind {
			case evAcquire:
				line := prog.Fset.Position(ev.pos).Line
				for _, h := range held {
					if h.lock == ev.lock {
						if h.rlock && ev.rlock {
							continue // RLock twice: legal (though writer-starvation-prone)
						}
						reportOnce(ev.pos,
							"%s acquired while already held (line %d): mutexes are not reentrant — same-shard re-entry deadlocks",
							ev.lock, h.line)
						continue
					}
					addEdge(h.lock, ev.lock, ev.pos, fname)
				}
				held = append(held, heldLock{lock: ev.lock, rlock: ev.rlock, line: line})
			case evRelease:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].lock == ev.lock {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case evBlock:
				if len(held) > 0 {
					reportOnce(ev.pos,
						"%s while holding %s: a peer that stalls this operation stalls every user of the lock",
						ev.what, holdsDesc())
				}
			case evCall:
				cs := summaries[ev.call]
				if cs == nil || len(held) == 0 {
					continue
				}
				if cs.mayBlock != "" {
					reportOnce(ev.pos,
						"call to %s, which can block on %s, while holding %s: a peer that stalls this operation stalls every user of the lock",
						FuncDisplayName(ev.call), cs.mayBlock, holdsDesc())
				}
				for _, lock := range sortedKeys(cs.mayAcquire) {
					heldIt := false
					for _, h := range held {
						if h.lock == lock {
							heldIt = true
							break
						}
					}
					if heldIt {
						reportOnce(ev.pos,
							"call to %s may re-acquire %s, which is already held: mutexes are not reentrant — same-shard re-entry deadlocks",
							FuncDisplayName(ev.call), lock)
						continue
					}
					for _, h := range held {
						addEdge(h.lock, lock, ev.pos, fname)
					}
				}
			}
		}
	}

	// Phase 4: cycles in the global lock-order graph.
	reportLockCycles(pp, edges)
}

type lockEdgeSite struct {
	pos token.Pos
	fn  string
}

// reportLockCycles finds strongly connected components of the lock-order
// graph and reports each component with >1 lock as a potential deadlock,
// listing one witness edge per direction.
func reportLockCycles(pp *ProgramPass, edges map[string]map[string]lockEdgeSite) {
	nodes := sortedKeysOfEdgeMap(edges)
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 1
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sortedKeys2(edges[v]) {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range nodes {
		if index[v] == 0 {
			strongconnect(v)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	for _, scc := range sccs {
		in := make(map[string]bool, len(scc))
		for _, n := range scc {
			in[n] = true
		}
		var parts []string
		var at token.Pos
		for _, from := range scc {
			for _, to := range sortedKeys2(edges[from]) {
				if !in[to] {
					continue
				}
				site := edges[from][to]
				p := pp.Prog.Fset.Position(site.pos)
				parts = append(parts, fmt.Sprintf("%s→%s in %s (%s:%d)",
					from, to, site.fn, filepath.Base(p.Filename), p.Line))
				if at == token.NoPos {
					at = site.pos
				}
			}
		}
		pp.Reportf(at,
			"lock-order cycle among {%s}: %s — two goroutines interleaving these chains deadlock",
			strings.Join(scc, ", "), strings.Join(parts, "; "))
	}
}

func sortedKeys(m map[string]token.Pos) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string]lockEdgeSite) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysOfEdgeMap(m map[string]map[string]lockEdgeSite) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// collectLockOrderSummary derives fi's intrinsic ordered events: lock
// operations, blocking operations, and calls, on the calling goroutine
// only (non-inline function literals and defer bodies excluded).
func collectLockOrderSummary(fi *FuncInfo) *lockOrderSummary {
	info := fi.Pkg.Info
	s := &lockOrderSummary{mayAcquire: make(map[string]token.Pos)}
	inline := inlineInvokedLits(fi.Decl)
	// handledComm marks channel operations that sit in a select with a
	// default arm — those never block.
	handledComm := make(map[ast.Node]bool)

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if inline[n] {
					walk(n.Body)
				}
				return false
			case *ast.DeferStmt:
				// Deferred unlocks release at return (the lock stays held
				// for the rest of the body — exactly what not emitting a
				// release models). Other deferred work runs outside the
				// textual order and is not simulated.
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CommClause)
					if !ok || cc.Comm == nil {
						continue
					}
					markCommOps(cc.Comm, handledComm)
				}
				if !hasDefault {
					s.events = append(s.events, lockEvent{kind: evBlock, pos: n.Pos(), what: "select with no default arm"})
				}
				return true
			case *ast.SendStmt:
				if !handledComm[n] {
					s.events = append(s.events, lockEvent{kind: evBlock, pos: n.Pos(), what: "channel send"})
				}
				return true
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !handledComm[n] {
					s.events = append(s.events, lockEvent{kind: evBlock, pos: n.Pos(), what: "channel receive"})
				}
				return true
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						s.events = append(s.events, lockEvent{kind: evBlock, pos: n.Pos(), what: "range over channel"})
					}
				}
				return true
			case *ast.CallExpr:
				if ev, ok := lockOpEvent(fi, n); ok {
					s.events = append(s.events, ev)
					return true
				}
				if what, ok := connIOCall(info, n); ok {
					s.events = append(s.events, lockEvent{kind: evBlock, pos: n.Pos(), what: what})
					return true
				}
				return true
			}
			return true
		})
	}
	walk(fi.Decl.Body)

	// Call events come from the resolved graph (same positions, resolved
	// callees), filtered to inline edges; deferred calls run outside the
	// textual order and are excluded. Merge into textual order.
	deferRanges := collectDeferRanges(fi.Decl)
	for _, call := range fi.Calls {
		if call.Async || deferRanges.contains(call.Pos) {
			continue
		}
		s.events = append(s.events, lockEvent{kind: evCall, pos: call.Pos, call: call.Callee})
	}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].pos < s.events[j].pos })

	for _, ev := range s.events {
		if ev.kind == evAcquire {
			if _, ok := s.mayAcquire[ev.lock]; !ok {
				s.mayAcquire[ev.lock] = ev.pos
			}
		}
		if ev.kind == evBlock && s.mayBlock == "" {
			s.mayBlock = ev.what
		}
	}
	return s
}

// posRanges is a set of source ranges.
type posRanges []struct{ start, end token.Pos }

func (r posRanges) contains(pos token.Pos) bool {
	for _, rng := range r {
		if rng.start <= pos && pos <= rng.end {
			return true
		}
	}
	return false
}

// collectDeferRanges returns the source ranges of every defer statement in
// fd (argument evaluation is immediate, but the repo's defers are
// uniformly cleanup calls — treating the whole statement as deferred is
// the simpler approximation).
func collectDeferRanges(fd *ast.FuncDecl) posRanges {
	var out posRanges
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			out = append(out, struct{ start, end token.Pos }{d.Pos(), d.End()})
		}
		return true
	})
	return out
}

// markCommOps records the channel operations of one select comm clause so
// the general walker knows they were already classified.
func markCommOps(stmt ast.Stmt, handled map[ast.Node]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			handled[n] = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				handled[n] = true
			}
		}
		return true
	})
}

// lockOpEvent resolves call as a mutex Lock/RLock/Unlock/RUnlock on a
// statically identifiable lock (struct field or package-level variable of
// type sync.Mutex or sync.RWMutex).
func lockOpEvent(fi *FuncInfo, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var kind lockEventKind
	rlock := false
	switch sel.Sel.Name {
	case "Lock":
		kind = evAcquire
	case "RLock":
		kind, rlock = evAcquire, true
	case "Unlock", "RUnlock":
		kind = evRelease
	default:
		return lockEvent{}, false
	}
	id, ok := lockIdent(fi, sel.X)
	if !ok {
		return lockEvent{}, false
	}
	return lockEvent{kind: kind, pos: call.Pos(), lock: id, rlock: rlock}, true
}

// lockIdent names the mutex value expr statically: "pkg.Type.field" for a
// struct-field mutex, "pkg.var" for a package-level one. Local mutexes
// (cannot be contended across functions without escaping, which a field
// would capture) and dynamically chosen ones return ok=false.
func lockIdent(fi *FuncInfo, expr ast.Expr) (string, bool) {
	info := fi.Pkg.Info
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		obj, ok := info.Uses[x.Sel].(*types.Var)
		if !ok || !obj.IsField() || !isMutexType(obj.Type()) {
			return "", false
		}
		recv := info.TypeOf(x.X)
		for {
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
				continue
			}
			break
		}
		if named, ok := recv.(*types.Named); ok {
			pkg := ""
			if named.Obj().Pkg() != nil {
				pkg = named.Obj().Pkg().Name() + "."
			}
			return pkg + named.Obj().Name() + "." + obj.Name(), true
		}
		return "", false
	case *ast.Ident:
		obj, ok := info.Uses[x].(*types.Var)
		if !ok || !isMutexType(obj.Type()) {
			return "", false
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name(), true
		}
		return "", false
	}
	return "", false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// connIOCall reports whether call is a direct read or write on a
// net.Conn-like value.
func connIOCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Read", "Write", "ReadFrom", "WriteTo":
	default:
		return "", false
	}
	if t := info.TypeOf(sel.X); t != nil && isConnLike(t) {
		switch sel.Sel.Name {
		case "Read", "ReadFrom":
			return "conn read", true
		}
		return "conn write", true
	}
	return "", false
}
