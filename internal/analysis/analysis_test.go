package analysis

import (
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// The fixture module lives in testdata (invisible to the go tool) and is
// loaded through the same Loader the CLI uses, under the module path
// "fixturemod" so import-path-sensitive rules (wallclock) see realistic
// paths.
var fixtures struct {
	once sync.Once
	root string
	l    *Loader
	err  error
}

func fixturePackages(t *testing.T, rels ...string) []*Package {
	t.Helper()
	fixtures.once.Do(func() {
		fixtures.root, fixtures.err = filepath.Abs(filepath.Join("testdata", "src", "fixturemod"))
		if fixtures.err == nil {
			fixtures.l = NewLoader(fixtures.root, "fixturemod")
		}
	})
	if fixtures.err != nil {
		t.Fatalf("locating fixtures: %v", fixtures.err)
	}
	var pkgs []*Package
	for _, rel := range rels {
		dir := filepath.Join(fixtures.root, filepath.FromSlash(rel))
		pkg, err := fixtures.l.LoadDir(dir, "fixturemod/"+rel)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", rel, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", rel, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

func fixtureReport(t *testing.T, rels ...string) *Report {
	t.Helper()
	return Run(fixturePackages(t, rels...), Rules(), fixtures.root)
}

func findingStrings(r *Report) []string {
	out := make([]string, 0, len(r.Findings))
	for _, f := range r.Findings {
		out = append(out, f.String())
	}
	return out
}

func checkGolden(t *testing.T, got, want []string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("findings mismatch\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

func TestUncheckedVerify(t *testing.T) {
	rep := fixtureReport(t, "uncheckedverify")
	checkGolden(t, findingStrings(rep), []string{
		"uncheckedverify/uncheckedverify.go:27: [uncheckedverify] error result of VerifyHash is discarded: a dropped verification verdict admits unverified objects",
		"uncheckedverify/uncheckedverify.go:28: [uncheckedverify] error result of VerifyHash is discarded: a dropped verification verdict admits unverified objects",
		"uncheckedverify/uncheckedverify.go:29: [uncheckedverify] error result of CheckPair is discarded: a dropped verification verdict admits unverified objects",
	})
}

func TestDeadlineBeforeIO(t *testing.T) {
	rep := fixtureReport(t, "deadline")
	checkGolden(t, findingStrings(rep), []string{
		"deadline/deadline.go:14: [deadlinebeforeio] conn.Read on a net.Conn with no dominating Set{,Read,Write}Deadline in readNaked: unbounded I/O is the slow-loris attack surface",
		"deadline/deadline.go:27: [deadlinebeforeio] conn conn demoted to io.Reader by call to bufio.NewReader in demote, which never arms a deadline: wrap-then-read with no deadline is unbounded I/O",
		"deadline/deadline.go:38: [deadlinebeforeio] conn.SetDeadline error discarded: a deadline that failed to arm leaves the conn unbounded — drop the connection instead",
	})
}

func TestGuardedBy(t *testing.T) {
	rep := fixtureReport(t, "guardedby")
	checkGolden(t, findingStrings(rep), []string{
		"guardedby/guardedby.go:13: [guardedby] 'guarded by lock' names no field of this struct: the guard contract protects nothing",
		"guardedby/guardedby.go:23: [guardedby] c.n is guarded by mu but racy contains no preceding c.mu.Lock()",
	})
}

func TestWallclock(t *testing.T) {
	rep := fixtureReport(t, "internal/cert")
	checkGolden(t, findingStrings(rep), []string{
		"internal/cert/clock.go:16: [wallclock] time.Now() reads the wall clock in epoch-sensitive package fixturemod/internal/cert: use the injected clock so expiry semantics stay deterministic",
		"internal/cert/clock.go:20: [wallclock] time.Since() reads the wall clock in epoch-sensitive package fixturemod/internal/cert: use the injected clock so expiry semantics stay deterministic",
	})
}

func TestBoundedDecode(t *testing.T) {
	rep := fixtureReport(t, "internal/roa")
	checkGolden(t, findingStrings(rep), []string{
		"internal/roa/roa.go:31: [boundeddecode] decoder UnmarshalNaked consumes attacker-sized parameter der with no len(der) comparison against a Max* limit: unbounded input is a resource-exhaustion primitive",
		"internal/roa/roa.go:36: [boundeddecode] decoder ParseLate consumes parameter der before its length limit check: the guard must dominate every use",
		"internal/roa/roa.go:58: [boundeddecode] decoder ParseWrongBound consumes attacker-sized parameter der with no len(der) comparison against a Max* limit: unbounded input is a resource-exhaustion primitive",
	})
}

func TestDiagExhaustive(t *testing.T) {
	rep := fixtureReport(t, "diag")
	checkGolden(t, findingStrings(rep), []string{
		"diag/diag.go:27: [diagexhaustive] switch on fixturemod/diag.DiagKind has no default and misses: DiagStale — an unhandled diagnostic is a silent one",
		"diag/diag.go:45: [diagexhaustive] table keyed by fixturemod/diag.DiagKind misses: DiagStale — an unmapped diagnostic renders as nothing when it matters most",
	})
}

func TestMetricsCoverage(t *testing.T) {
	rep := fixtureReport(t, "metricscoverage")
	checkGolden(t, findingStrings(rep), []string{
		"metricscoverage/metricscoverage.go:19: [diagexhaustive] table keyed by fixturemod/metricscoverage.DiagKind misses: DiagStale — an unmapped diagnostic renders as nothing when it matters most",
		"metricscoverage/metricscoverage.go:19: [metricscoverage] obs event-kind table keyed by DiagKind misses: DiagStale — a degraded state without an event is invisible to operators",
		"metricscoverage/metricscoverage.go:25: [metricscoverage] observable enum BreakerState has no obs event-kind table: every state this package can enter must map to a metric or flight-recorder event",
	})
}

func TestPoolHygiene(t *testing.T) {
	rep := fixtureReport(t, "pool")
	checkGolden(t, findingStrings(rep), []string{
		"pool/pool.go:20: [poolhygiene] bp is returned to the pool but an alias of the pooled memory escapes leakReturn (returned at line 21): the next Get shares bytes with the escapee",
		"pool/pool.go:32: [poolhygiene] bp is returned to the pool but an alias of the pooled memory escapes leakField (returned at line 33): the next Get shares bytes with the escapee",
	})
}

func TestSuppressions(t *testing.T) {
	rep := fixtureReport(t, "suppress")
	checkGolden(t, findingStrings(rep), []string{
		`suppress/suppress.go:17: [suppression] //lint:ignore names unknown rule "nosuchrule"`,
		"suppress/suppress.go:18: [uncheckedverify] error result of CheckThing is discarded: a dropped verification verdict admits unverified objects",
		"suppress/suppress.go:22: [suppression] //lint:ignore uncheckedverify has no reason: every exception must explain itself",
		"suppress/suppress.go:23: [uncheckedverify] error result of CheckThing is discarded: a dropped verification verdict admits unverified objects",
	})
	if rep.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1 (only the well-formed directive may suppress)", rep.Suppressed)
	}
	if len(rep.Suppressions) != 3 {
		t.Fatalf("got %d suppressions, want 3: %+v", len(rep.Suppressions), rep.Suppressions)
	}
	for i, wantUsed := range []bool{true, false, false} {
		if rep.Suppressions[i].Used != wantUsed {
			t.Errorf("suppression at line %d: Used = %v, want %v",
				rep.Suppressions[i].Line, rep.Suppressions[i].Used, wantUsed)
		}
	}
}

// TestTaintFlow spans two fixture packages: the source, sink, and
// sanitizers live in taint/wire while the flows cross taint's helpers —
// only the whole-program call graph can connect them.
func TestTaintFlow(t *testing.T) {
	rep := fixtureReport(t, "taint/wire", "taint")
	checkGolden(t, findingStrings(rep), []string{
		"taint/taint.go:17: [taintflow] attacker-controlled bytes from wire.ReadFrame reach sink wire.Emit with no sanitizer on the path wire.ReadFrame → taint.relay → taint.forward → wire.Emit: misbehaving-authority input must be bounded and verified before it has routing consequences",
		"taint/taint.go:35: [taintflow] attacker-controlled bytes from taint.FuzzParse reach sink wire.Emit with no sanitizer on the path taint.FuzzParse → wire.Emit: misbehaving-authority input must be bounded and verified before it has routing consequences",
		"taint/taint.go:50: [taintflow] attacker-controlled bytes from taint.readConn reach sink wire.Emit with no sanitizer on the path taint.readConn → taint.connFlow → wire.Emit: misbehaving-authority input must be bounded and verified before it has routing consequences",
		"taint/taint.go:65: [suppression] //lint:ignore taintflow has no reason: every exception must explain itself",
		"taint/taint.go:66: [taintflow] attacker-controlled bytes from wire.ReadFrame reach sink wire.Emit with no sanitizer on the path wire.ReadFrame → taint.relayBad → taint.forwardBad → wire.Emit: misbehaving-authority input must be bounded and verified before it has routing consequences",
		`taint/wire/wire.go:29: [taintflow] unknown taint marker "gadget": valid kinds are source, sink, sanitizer`,
		"taint/wire/wire.go:34: [taintflow] //taint:source has no description: the taint surface must document what the source is",
	})
	if rep.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1 (only relayOK's directive may suppress)", rep.Suppressed)
	}
}

func TestLockOrder(t *testing.T) {
	rep := fixtureReport(t, "lockorder")
	checkGolden(t, findingStrings(rep), []string{
		"lockorder/lockorder.go:20: [lockorder] lock-order cycle among {lockorder.A.mu, lockorder.B.mu}: lockorder.A.mu→lockorder.B.mu in lockorder.A.lockAB (lockorder.go:20); lockorder.B.mu→lockorder.A.mu in lockorder.B.lockBA (lockorder.go:29) — two goroutines interleaving these chains deadlock",
		"lockorder/lockorder.go:44: [lockorder] call to lockorder.C.inner may re-acquire lockorder.C.mu, which is already held: mutexes are not reentrant — same-shard re-entry deadlocks",
		"lockorder/lockorder.go:55: [lockorder] lockorder.C.mu acquired while already held (line 54): mutexes are not reentrant — same-shard re-entry deadlocks",
		"lockorder/lockorder.go:68: [lockorder] channel send while holding lockorder.D.mu: a peer that stalls this operation stalls every user of the lock",
		"lockorder/lockorder.go:85: [lockorder] call to lockorder.D.waitOne, which can block on channel receive, while holding lockorder.D.mu: a peer that stalls this operation stalls every user of the lock",
		"lockorder/lockorder.go:98: [lockorder] conn write while holding lockorder.D.mu: a peer that stalls this operation stalls every user of the lock",
		"lockorder/lockorder.go:123: [suppression] //lint:ignore lockorder has no reason: every exception must explain itself",
		"lockorder/lockorder.go:124: [lockorder] channel send while holding lockorder.D.mu: a peer that stalls this operation stalls every user of the lock",
	})
}

func TestAtomicMix(t *testing.T) {
	rep := fixtureReport(t, "atomicmix")
	checkGolden(t, findingStrings(rep), []string{
		"atomicmix/atomicmix.go:17: [atomicmix] atomicmix.Counter.n is accessed with sync/atomic in atomicmix.Counter.IncAtomic (atomicmix.go:14) but with a plain load/store in atomicmix.Counter.ReadPlain: mixed access synchronizes nothing",
		"atomicmix/atomicmix.go:35: [atomicmix] atomicmix.total is accessed with sync/atomic in atomicmix.bumpTotal (atomicmix.go:32) but with a plain load/store in atomicmix.totalPlain: mixed access synchronizes nothing",
		"atomicmix/atomicmix.go:46: [suppression] //lint:ignore atomicmix has no reason: every exception must explain itself",
		"atomicmix/atomicmix.go:47: [atomicmix] atomicmix.Counter.n is accessed with sync/atomic in atomicmix.Counter.IncAtomic (atomicmix.go:14) but with a plain load/store in atomicmix.readBad: mixed access synchronizes nothing",
	})
}

// TestLoaderBuildTags: a file excluded by //go:build must contribute
// neither declarations nor findings.
func TestLoaderBuildTags(t *testing.T) {
	pkgs := fixturePackages(t, "buildtag")
	if n := len(pkgs[0].Files); n != 1 {
		t.Errorf("loaded %d files, want 1 (excluded.go must be skipped)", n)
	}
	rep := Run(pkgs, Rules(), fixtures.root)
	checkGolden(t, findingStrings(rep), []string{})
}

// TestLoaderGenerics: type-parameterized code loads, type-checks, and is
// visible to the rules through instantiation.
func TestLoaderGenerics(t *testing.T) {
	rep := fixtureReport(t, "generics")
	checkGolden(t, findingStrings(rep), []string{
		"generics/generics.go:34: [uncheckedverify] error result of CheckEqual is discarded: a dropped verification verdict admits unverified objects",
	})
}

// TestRulesByName pins the -rules selector: subsets resolve, "all" and ""
// mean everything, unknown names error.
func TestRulesByName(t *testing.T) {
	all, err := RulesByName("")
	if err != nil || len(all) != len(Rules()) {
		t.Fatalf("RulesByName(\"\") = %d rules, err %v; want all %d", len(all), err, len(Rules()))
	}
	sub, err := RulesByName("taintflow,lockorder")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name != "taintflow" || sub[1].Name != "lockorder" {
		t.Errorf("subset = %v", sub)
	}
	if _, err := RulesByName("nosuchrule"); err == nil {
		t.Error("unknown rule name must error")
	}
}

// TestRuleSubsetRun: running a subset only reports that subset's findings
// and still records timings for it (plus the shared call-graph build).
func TestRuleSubsetRun(t *testing.T) {
	rules, err := RulesByName("atomicmix")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(fixturePackages(t, "atomicmix"), rules, fixtures.root)
	for _, f := range rep.Findings {
		// Malformed //lint:ignore directives report under the suppression
		// pseudo-rule in every run; anything else must be atomicmix.
		if !strings.Contains(f.String(), "[atomicmix]") && !strings.Contains(f.String(), "[suppression]") {
			t.Errorf("subset run leaked finding: %s", f)
		}
	}
	if len(rep.Findings) == 0 {
		t.Error("atomicmix subset should still find the fixture races")
	}
	names := make(map[string]bool)
	for _, tm := range rep.Timings {
		names[tm.Rule] = true
	}
	if !names["atomicmix"] || !names["callgraph"] {
		t.Errorf("timings = %v, want atomicmix and callgraph entries", names)
	}
}

// TestModuleSelfRun dogfoods the suite over this repository: the tree must
// be finding-free, and every //lint:ignore in it must actually suppress
// something — an unused suppression is stale documentation.
func TestModuleSelfRun(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, path)
	pkgs, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
	}
	rep := Run(pkgs, Rules(), root)
	for _, f := range rep.Findings {
		t.Errorf("unexpected finding: %s", f)
	}
	for _, s := range rep.Suppressions {
		if !s.Used {
			t.Errorf("%s:%d: //lint:ignore %s suppresses nothing: remove it",
				s.File, s.Line, strings.Join(s.Rules, ","))
		}
	}
}
