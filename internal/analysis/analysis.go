package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// A Rule is one domain invariant checked over typed ASTs. Intraprocedural
// rules set Run and are invoked once per package; whole-program rules set
// RunProgram and are invoked once per Run with the shared call graph and
// fact store. A rule may set both.
type Rule struct {
	// Name is the rule identifier used in findings and //lint:ignore.
	Name string
	// Doc is a one-line description of the invariant the rule enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunProgram inspects the whole program (call graph + fact store).
	RunProgram func(*ProgramPass)
}

// Rules returns the full suite, in canonical order.
func Rules() []*Rule {
	return []*Rule{
		uncheckedVerifyRule,
		deadlineBeforeIORule,
		guardedByRule,
		wallclockRule,
		diagExhaustiveRule,
		metricsCoverageRule,
		poolHygieneRule,
		boundedDecodeRule,
		taintFlowRule,
		lockOrderRule,
		atomicMixRule,
	}
}

// RulesByName resolves a comma-separated rule subset ("taintflow,lockorder")
// against the full suite, preserving canonical order. An empty or "all"
// selector returns every rule.
func RulesByName(selector string) ([]*Rule, error) {
	if selector == "" || selector == "all" {
		return Rules(), nil
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(selector, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		want[name] = true
	}
	var out []*Rule
	for _, r := range Rules() {
		if want[r.Name] {
			out = append(out, r)
			delete(want, r.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("analysis: unknown rule(s) %s", strings.Join(unknown, ", "))
	}
	return out, nil
}

// ruleNames returns the set of valid rule names (for suppression checking).
func ruleNames() map[string]bool {
	names := make(map[string]bool)
	for _, r := range Rules() {
		names[r.Name] = true
	}
	return names
}

// Pass is the per-(rule, package) context handed to Rule.Run.
type Pass struct {
	Pkg  *Package
	rule string
	out  *Report
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.out.add(p.Pkg.Fset, pos, p.rule, fmt.Sprintf(format, args...))
}

// ProgramPass is the per-rule whole-program context handed to
// Rule.RunProgram.
type ProgramPass struct {
	Prog *Program
	rule string
	out  *Report
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.out.add(p.Prog.Fset, pos, p.rule, fmt.Sprintf(format, args...))
}

// Finding is one rule violation.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the finding in the canonical "file:line: [rule] message"
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Message)
}

// Suppression is one //lint:ignore directive found in the analyzed source.
type Suppression struct {
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Rules  []string `json:"rules"`
	Reason string   `json:"reason"`
	// Used reports whether the directive actually suppressed a finding.
	Used bool `json:"used"`
}

// RuleTiming is one rule's wall time over the whole run (all packages for
// per-package rules, the single whole-program pass for program rules).
// The pseudo-rule "callgraph" accounts for building the Program.
type RuleTiming struct {
	Rule   string  `json:"rule"`
	Millis float64 `json:"millis"`
}

// Report is the outcome of one analysis run.
type Report struct {
	// Findings are the surviving (unsuppressed) findings, canonically
	// ordered by file, line, column, rule.
	Findings []Finding `json:"findings"`
	// Suppressions lists every //lint:ignore directive encountered.
	Suppressions []Suppression `json:"suppressions"`
	// Suppressed counts findings silenced by a directive.
	Suppressed int `json:"suppressed"`
	// SuppressionInventory is the suppression set in a canonical
	// line-diffable form — "rule file:line reason" sorted — so CI can diff
	// the exception surface across PRs and review every addition.
	SuppressionInventory []string `json:"suppression_inventory"`
	// Timings reports per-rule wall time, sorted by rule name.
	Timings []RuleTiming `json:"timings"`

	baseDir string
}

func (r *Report) add(fset *token.FileSet, pos token.Pos, rule, message string) {
	p := fset.Position(pos)
	r.Findings = append(r.Findings, Finding{
		File:    r.relFile(p.Filename),
		Line:    p.Line,
		Col:     p.Column,
		Rule:    rule,
		Message: message,
	})
}

// relFile makes file names stable and readable: relative to the run's base
// directory when possible.
func (r *Report) relFile(name string) string {
	if r.baseDir == "" {
		return name
	}
	if rel, err := filepath.Rel(r.baseDir, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

// SuppressionRule is the pseudo-rule under which malformed //lint:ignore
// directives are reported. It is not itself suppressible: an exception that
// cannot explain itself must not be able to silence the complaint about it.
const SuppressionRule = "suppression"

// Run executes every rule over every package and resolves suppressions.
// baseDir (usually the module root) relativizes file names in the output.
// Program rules run once over the whole package set; the call graph is
// built only when at least one selected rule needs it.
func Run(pkgs []*Package, rules []*Rule, baseDir string) *Report {
	report := &Report{baseDir: baseDir}
	elapsed := make(map[string]time.Duration)

	var prog *Program
	for _, rule := range rules {
		if rule.RunProgram != nil {
			start := time.Now()
			prog = BuildProgram(pkgs)
			elapsed["callgraph"] = time.Since(start)
			break
		}
	}
	for _, rule := range rules {
		start := time.Now()
		if rule.Run != nil {
			for _, pkg := range pkgs {
				rule.Run(&Pass{Pkg: pkg, rule: rule.Name, out: report})
			}
		}
		if rule.RunProgram != nil {
			rule.RunProgram(&ProgramPass{Prog: prog, rule: rule.Name, out: report})
		}
		elapsed[rule.Name] += time.Since(start)
	}
	for name, d := range elapsed {
		report.Timings = append(report.Timings, RuleTiming{Rule: name, Millis: float64(d.Nanoseconds()) / 1e6})
	}
	sort.Slice(report.Timings, func(i, j int) bool { return report.Timings[i].Rule < report.Timings[j].Rule })

	report.applySuppressions(pkgs)
	sort.Slice(report.Findings, func(i, j int) bool {
		a, b := report.Findings[i], report.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return report
}

// applySuppressions collects //lint:ignore directives from every file,
// validates them (unknown rule names and missing reasons are findings), and
// drops the findings they cover. A directive covers findings on its own
// line and on the line below it, so both trailing and preceding placement
// work.
func (r *Report) applySuppressions(pkgs []*Package) {
	known := ruleNames()
	type key struct {
		file string
		line int
		rule string
	}
	covered := make(map[key]*Suppression)
	var suppressions []*Suppression
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fname := r.relFile(pos.Filename)
					fields := strings.Fields(text)
					if len(fields) == 0 {
						r.Findings = append(r.Findings, Finding{
							File: fname, Line: pos.Line, Col: pos.Column, Rule: SuppressionRule,
							Message: "//lint:ignore needs a rule name and a reason",
						})
						continue
					}
					rules := strings.Split(fields[0], ",")
					reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), fields[0]))
					sup := &Suppression{File: fname, Line: pos.Line, Rules: rules, Reason: reason}
					suppressions = append(suppressions, sup)
					bad := false
					for _, rule := range rules {
						if !known[rule] {
							r.Findings = append(r.Findings, Finding{
								File: fname, Line: pos.Line, Col: pos.Column, Rule: SuppressionRule,
								Message: fmt.Sprintf("//lint:ignore names unknown rule %q", rule),
							})
							bad = true
						}
					}
					if reason == "" {
						r.Findings = append(r.Findings, Finding{
							File: fname, Line: pos.Line, Col: pos.Column, Rule: SuppressionRule,
							Message: fmt.Sprintf("//lint:ignore %s has no reason: every exception must explain itself", fields[0]),
						})
						bad = true
					}
					if bad {
						continue // a malformed directive suppresses nothing
					}
					for _, rule := range rules {
						covered[key{fname, pos.Line, rule}] = sup
						covered[key{fname, pos.Line + 1, rule}] = sup
					}
				}
			}
		}
	}
	kept := r.Findings[:0]
	for _, f := range r.Findings {
		if f.Rule != SuppressionRule {
			if sup := covered[key{f.File, f.Line, f.Rule}]; sup != nil {
				sup.Used = true
				r.Suppressed++
				continue
			}
		}
		kept = append(kept, f)
	}
	r.Findings = kept
	for _, sup := range suppressions {
		r.Suppressions = append(r.Suppressions, *sup)
	}
	sort.Slice(r.Suppressions, func(i, j int) bool {
		a, b := r.Suppressions[i], r.Suppressions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	// One line per (rule, site): stable under reordering of the source
	// list, so "diff old.inventory new.inventory" in CI shows exactly the
	// exceptions a PR adds or removes.
	for _, sup := range r.Suppressions {
		for _, rule := range sup.Rules {
			r.SuppressionInventory = append(r.SuppressionInventory,
				fmt.Sprintf("%s %s:%d %s", rule, sup.File, sup.Line, sup.Reason))
		}
	}
	sort.Strings(r.SuppressionInventory)
}

// enclosingFuncs indexes a file's top-level function declarations so rules
// can attribute an arbitrary position to the function (closures included)
// that contains it.
type funcIndex struct {
	decls []*ast.FuncDecl
}

func indexFuncs(file *ast.File) *funcIndex {
	idx := &funcIndex{}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			idx.decls = append(idx.decls, fd)
		}
	}
	return idx
}

func (idx *funcIndex) enclosing(pos token.Pos) *ast.FuncDecl {
	for _, fd := range idx.decls {
		if fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
