package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// boundeddecode: exported decoder entry points in the object-parsing
// packages (cms, manifest, roa, rfc3779) take attacker-controlled bytes —
// every publication point serves whatever its authority wrote. Each such
// function must enforce a hard length limit on its input before doing any
// work proportional to it; a decoder that allocates or walks first is a
// resource-exhaustion primitive (the CURE fuzzing campaign's bug class).
// The rule flags exported Parse*/Decode*/Unmarshal* functions with a []byte
// parameter whose body either never compares len(param) against a Max*
// limit, or consumes the parameter before the comparison.
var boundedDecodeRule = &Rule{
	Name: "boundeddecode",
	Doc:  "exported decoder accepts attacker-sized []byte without enforcing a Max* length limit before consuming it",
	Run:  runBoundedDecode,
}

// boundedDecodePackages are the decoder packages, matched by import path
// suffix so the fixture packages in testdata exercise the rule too.
var boundedDecodePackages = []string{
	"internal/cms",
	"internal/manifest",
	"internal/roa",
	"internal/rfc3779",
	"internal/rtr",
}

func decoderPackage(path string) bool {
	for _, suffix := range boundedDecodePackages {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// decoderEntryPoint reports whether the function name marks an exported
// decode entry point.
func decoderEntryPoint(name string) bool {
	for _, prefix := range []string{"Parse", "Decode", "Unmarshal"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runBoundedDecode(pass *Pass) {
	if !decoderPackage(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || !decoderEntryPoint(fd.Name.Name) {
				continue
			}
			for _, param := range byteSliceParams(info, fd) {
				checkBoundedParam(pass, fd, param)
			}
		}
	}
}

// byteSliceParams returns the declared []byte parameters of fd.
func byteSliceParams(info *types.Info, fd *ast.FuncDecl) []*ast.Ident {
	var out []*ast.Ident
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		slice, ok := t.(*types.Slice)
		if !ok {
			continue
		}
		basic, ok := slice.Elem().Underlying().(*types.Basic)
		if !ok || basic.Kind() != types.Byte {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				out = append(out, name)
			}
		}
	}
	return out
}

// checkBoundedParam verifies that param's first consuming use inside fd is
// dominated (positionally) by a len(param) comparison against a Max* limit.
func checkBoundedParam(pass *Pass, fd *ast.FuncDecl, param *ast.Ident) {
	info := pass.Pkg.Info
	obj := info.Defs[param]
	if obj == nil {
		return
	}
	var guardPos, usePos token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if bin, ok := n.(*ast.BinaryExpr); ok && isLimitGuard(info, bin, obj) {
			if guardPos == token.NoPos || bin.Pos() < guardPos {
				guardPos = bin.Pos()
			}
			return false // len(param) inside the guard is not a consuming use
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			if !insideLenCall(fd, id, info, obj) {
				if usePos == token.NoPos || id.Pos() < usePos {
					usePos = id.Pos()
				}
			}
		}
		return true
	})
	switch {
	case guardPos == token.NoPos:
		pass.Reportf(fd.Name.Pos(),
			"decoder %s consumes attacker-sized parameter %s with no len(%s) comparison against a Max* limit: unbounded input is a resource-exhaustion primitive",
			fd.Name.Name, param.Name, param.Name)
	case usePos != token.NoPos && usePos < guardPos:
		pass.Reportf(fd.Name.Pos(),
			"decoder %s consumes parameter %s before its length limit check: the guard must dominate every use",
			fd.Name.Name, param.Name)
	}
}

// isLimitGuard reports whether bin compares len(param) against an
// identifier whose name carries a Max* limit (direct or via selector, in
// either operand order).
func isLimitGuard(info *types.Info, bin *ast.BinaryExpr, param types.Object) bool {
	switch bin.Op {
	case token.GTR, token.GEQ, token.LSS, token.LEQ:
	default:
		return false
	}
	return (isLenOf(info, bin.X, param) && mentionsMax(bin.Y)) ||
		(isLenOf(info, bin.Y, param) && mentionsMax(bin.X))
}

// isLenOf reports whether expr is the builtin call len(param).
func isLenOf(info *types.Info, expr ast.Expr, param types.Object) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "len" {
		return false
	}
	if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.Uses[arg] == param
}

// mentionsMax reports whether expr references an identifier whose name
// starts with "Max" or "max" — the naming convention for hard input limits.
func mentionsMax(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			lower := strings.ToLower(id.Name)
			if strings.HasPrefix(lower, "max") {
				found = true
			}
		}
		return true
	})
	return found
}

// insideLenCall reports whether the identifier use at id sits inside a
// len(param) call — measuring the input is always safe; only walking or
// allocating from it needs the guard first.
func insideLenCall(fd *ast.FuncDecl, id *ast.Ident, info *types.Info, param types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isLenOf(info, call, param) {
			return true
		}
		if call.Pos() <= id.Pos() && id.Pos() <= call.End() {
			found = true
		}
		return true
	})
	return found
}
