package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// taintflow mechanizes the paper's core invariant interprocedurally:
// bytes a misbehaving authority (or a misbehaving RTR peer) controls must
// never reach an output path without passing a bounding or verifying
// check, no matter how many helpers they cross on the way.
//
// Classification is part built-in, part declared in the code:
//
//   - Sources produce attacker-controlled bytes: any function that reads
//     directly from a net.Conn-like value, any Fuzz* target, and any
//     function marked "//taint:source <what>" (pack-file readers,
//     replication-frame decoders, repository protocol reads).
//   - Sinks are where those bytes gain routing consequences: VRP emission,
//     RTR frame serialization, last-known-good and module-memo commits —
//     declared with "//taint:sink <what>" on the function.
//   - Sanitizers bound or verify: Verify*/Check*/Validate* functions, any
//     decoder whose body compares len(input) against a Max* limit (the
//     bounded-decoder convention boundeddecode enforces), and functions
//     marked "//taint:sanitizer <what>".
//
// Taint propagates over the whole-program call graph: a function that
// calls a source carries that source's taint; a tainted function passes
// taint to every callee it hands payload-capable data ([]byte, readers,
// containers of either — see Call.CarriesBytes) except sanitizers, which
// cleanse at the boundary. A function that itself sanitizes (by being, or
// calling, a sanitizer) neither reports nor propagates — the analysis is
// flow-insensitive within one function, and the convention is that
// validation and use live in the same function body. Any remaining
// source→sink path is a finding.
//
// A marker with an unknown kind or no description is itself a finding:
// the taint surface is part of the threat model and must stay documented.
var taintFlowRule = &Rule{
	Name:       "taintflow",
	Doc:        "attacker-controlled bytes reach an output sink with no bounding or verifying sanitizer on the call path",
	RunProgram: runTaintFlow,
}

// taintClass is one function's role in the taint lattice.
type taintClass struct {
	source    bool
	sink      bool
	sanitizer bool
}

func runTaintFlow(pp *ProgramPass) {
	prog := pp.Prog
	classes := make(map[*types.Func]*taintClass)
	classOf := func(fn *types.Func) *taintClass {
		if c, ok := classes[fn]; ok {
			return c
		}
		// Bodyless callees (stdlib, interface methods with no in-program
		// implementation) classify by name convention only.
		c := &taintClass{source: taintSourceName(fn.Name()), sanitizer: taintSanitizerName(fn.Name())}
		classes[fn] = c
		return c
	}

	for _, fi := range prog.Functions() {
		c := &taintClass{
			source:    taintSourceName(fi.Fn.Name()) || readsConnDirectly(fi),
			sanitizer: taintSanitizerName(fi.Fn.Name()) || boundedDecoderLike(fi),
		}
		for _, m := range funcMarkers(fi.Decl, "taint") {
			switch m.Kind {
			case "source":
				c.source = true
			case "sink":
				c.sink = true
			case "sanitizer":
				c.sanitizer = true
			default:
				pp.Reportf(m.Pos, "unknown taint marker %q: valid kinds are source, sink, sanitizer", m.Kind)
				continue
			}
			if m.Reason == "" {
				pp.Reportf(m.Pos, "//taint:%s has no description: the taint surface must document what the %s is", m.Kind, m.Kind)
			}
		}
		classes[fi.Fn] = c
	}

	// cleansed: the function is a sanitizer or invokes one — its data is
	// considered validated from here on (flow-insensitive by design).
	cleansed := func(fi *FuncInfo) bool {
		if classOf(fi.Fn).sanitizer {
			return true
		}
		for _, call := range fi.Calls {
			if classOf(call.Callee).sanitizer {
				return true
			}
		}
		return false
	}

	// carriers[f][origin] is the call path from origin's introduction
	// point down to f (inclusive).
	carriers := make(map[*types.Func]map[*types.Func][]*types.Func)
	addOrigin := func(fn, origin *types.Func, path []*types.Func) bool {
		m := carriers[fn]
		if m == nil {
			m = make(map[*types.Func][]*types.Func)
			carriers[fn] = m
		}
		if _, ok := m[origin]; ok {
			return false
		}
		m[origin] = path
		return true
	}

	var queue []*types.Func
	for _, fi := range prog.Functions() {
		c := classOf(fi.Fn)
		if c.source && !c.sanitizer {
			if addOrigin(fi.Fn, fi.Fn, []*types.Func{fi.Fn}) {
				queue = append(queue, fi.Fn)
			}
			continue
		}
		for _, call := range fi.Calls {
			cc := classOf(call.Callee)
			if cc.source && !cc.sanitizer {
				if addOrigin(fi.Fn, call.Callee, []*types.Func{call.Callee, fi.Fn}) {
					queue = append(queue, fi.Fn)
				}
				break
			}
		}
	}

	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fi := prog.Funcs[fn]
		if fi == nil || cleansed(fi) {
			continue
		}
		origins := sortedOrigins(carriers[fn])
		for _, call := range fi.Calls {
			callee := call.Callee
			// Taint travels only where payload bytes can: calls passing no
			// byte-capable data (orchestration, parsed-value installs) do
			// not carry it.
			if !call.CarriesBytes || prog.Funcs[callee] == nil || classOf(callee).sanitizer {
				continue
			}
			grew := false
			for _, o := range origins {
				if addOrigin(callee, o, append(append([]*types.Func{}, carriers[fn][o]...), callee)) {
					grew = true
				}
			}
			if grew {
				queue = append(queue, callee)
			}
		}
	}

	for _, fi := range prog.Functions() {
		m := carriers[fi.Fn]
		if len(m) == 0 || cleansed(fi) {
			continue
		}
		origins := sortedOrigins(m)
		reported := make(map[token.Pos]bool)
		for _, call := range fi.Calls {
			if !classOf(call.Callee).sink || reported[call.Pos] {
				continue
			}
			reported[call.Pos] = true
			origin := origins[0]
			names := make([]string, 0, len(m[origin])+1)
			for _, f := range m[origin] {
				names = append(names, FuncDisplayName(f))
			}
			names = append(names, FuncDisplayName(call.Callee))
			pp.Reportf(call.Pos,
				"attacker-controlled bytes from %s reach sink %s with no sanitizer on the path %s: misbehaving-authority input must be bounded and verified before it has routing consequences",
				FuncDisplayName(origin), FuncDisplayName(call.Callee), strings.Join(names, " → "))
		}
	}
}

// sortedOrigins orders an origin set by display name then position for
// deterministic findings.
func sortedOrigins(m map[*types.Func][]*types.Func) []*types.Func {
	out := make([]*types.Func, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := FuncDisplayName(out[i]), FuncDisplayName(out[j])
		if a != b {
			return a < b
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}

func taintSourceName(name string) bool { return strings.HasPrefix(name, "Fuzz") }

func taintSanitizerName(name string) bool {
	for _, prefix := range []string{"Verify", "Check", "Validate"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// readsConnDirectly reports whether fi's body reads bytes straight off a
// net.Conn-like value: a ".Read"-family method call on a conn, or
// io.ReadFull/io.ReadAll handed one.
func readsConnDirectly(fi *FuncInfo) bool {
	info := fi.Pkg.Info
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Read", "ReadFull", "ReadByte", "ReadBytes":
			if t := info.TypeOf(sel.X); t != nil && isConnLike(t) {
				found = true
				return false
			}
		case "ReadAll":
			if len(call.Args) == 1 {
				if t := info.TypeOf(call.Args[0]); t != nil && isConnLike(t) {
					found = true
					return false
				}
			}
		}
		if sel.Sel.Name == "ReadFull" && len(call.Args) >= 1 {
			if t := info.TypeOf(call.Args[0]); t != nil && isConnLike(t) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// boundedDecoderLike reports whether fi enforces a Max* length limit on a
// []byte parameter — the bounded-decoder convention, which counts as
// sanitizing its input.
func boundedDecoderLike(fi *FuncInfo) bool {
	info := fi.Pkg.Info
	for _, param := range byteSliceParams(info, fi.Decl) {
		obj := info.Defs[param]
		if obj == nil {
			continue
		}
		found := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if bin, ok := n.(*ast.BinaryExpr); ok && isLimitGuard(info, bin, obj) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
