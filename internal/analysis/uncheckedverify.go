package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// uncheckedverify: a Verify*/Check*/Validate* function's error result is
// the verdict — discarding it is exactly the "misbehavior goes unnoticed"
// failure the paper is about (a relying party that calls VerifyHash and
// ignores the answer has admitted an unverified object). The rule flags
// calls to any function whose name starts with Verify, Check or Validate
// and whose error result is discarded: the call as a bare statement, a
// go/defer statement, or an assignment that sends the error to the blank
// identifier.
var uncheckedVerifyRule = &Rule{
	Name: "uncheckedverify",
	Doc:  "error result of a Verify*/Check*/Validate* call is discarded",
	Run:  runUncheckedVerify,
}

func isVerifyName(name string) bool {
	return strings.HasPrefix(name, "Verify") ||
		strings.HasPrefix(name, "Check") ||
		strings.HasPrefix(name, "Validate")
}

func runUncheckedVerify(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			discards := blankDiscards(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || !isVerifyName(fn.Name()) {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				errIdx := errorResults(sig)
				if len(errIdx) == 0 {
					return true
				}
				blanks, present := discards[call]
				for _, i := range errIdx {
					if discardsIndex(blanks, present, i) {
						pass.Reportf(call.Pos(),
							"error result of %s is discarded: a dropped verification verdict admits unverified objects",
							fn.Name())
						break
					}
				}
				return true
			})
		}
	}
}
