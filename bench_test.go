package rpkirisk

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md's per-experiment index). Run with:
//
//	go test -bench=. -benchmem .
//
// Each BenchmarkFigure*/BenchmarkTable*/BenchmarkSideEffect* executes the
// corresponding experiment end to end — building the hierarchy with real
// cryptographic objects, performing the manipulation, validating, and
// checking the paper's shape claims. Micro-benchmarks for the hot paths
// follow at the bottom.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/ipres"
	"repro/internal/repo"
	"repro/internal/roa"
	"repro/internal/rov"
	"repro/internal/rp"
	"repro/internal/rtr"
)

func benchExperiment(b *testing.B, run func() (*experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Passed() {
			b.Fatalf("shape checks failed: %+v", r.Failed())
		}
	}
}

// BenchmarkFigure1DependencyLoop exercises every edge of the paper's
// Figure 1 dependency loop.
func BenchmarkFigure1DependencyLoop(b *testing.B) {
	benchExperiment(b, experiments.Figure1)
}

// BenchmarkFigure2ModelRPKI builds and fully validates the model hierarchy.
func BenchmarkFigure2ModelRPKI(b *testing.B) {
	benchExperiment(b, experiments.Figure2)
}

// BenchmarkFigure3MakeBeforeBreak plans and executes the grandparent whack
// with make-before-break reissuance.
func BenchmarkFigure3MakeBeforeBreak(b *testing.B) {
	benchExperiment(b, experiments.Figure3)
}

// BenchmarkTable4CrossBorder reproduces the cross-jurisdiction table and
// the synthetic rate measurement.
func BenchmarkTable4CrossBorder(b *testing.B) {
	benchExperiment(b, experiments.Table4)
}

// BenchmarkFigure5Validity computes both validity-grid panels.
func BenchmarkFigure5Validity(b *testing.B) {
	benchExperiment(b, experiments.Figure5)
}

// BenchmarkTable6PolicyTradeoff measures reachability under policy × threat.
func BenchmarkTable6PolicyTradeoff(b *testing.B) {
	benchExperiment(b, experiments.Table6)
}

// BenchmarkSideEffect12Reclamation contrasts revocation with stealthy
// deletion.
func BenchmarkSideEffect12Reclamation(b *testing.B) {
	benchExperiment(b, experiments.SideEffects12)
}

// BenchmarkSideEffect34TargetedWhack quantifies surgical whacking against
// the revocation baseline, including the deep (great-grandchild) variant.
func BenchmarkSideEffect34TargetedWhack(b *testing.B) {
	benchExperiment(b, experiments.SideEffects34)
}

// BenchmarkSideEffect6MissingROA flips a route to invalid by losing a ROA.
func BenchmarkSideEffect6MissingROA(b *testing.B) {
	benchExperiment(b, experiments.SideEffect6)
}

// BenchmarkSideEffect7Circularity runs the transient-fault persistence
// timeline on the RPKI↔BGP loop.
func BenchmarkSideEffect7Circularity(b *testing.B) {
	benchExperiment(b, experiments.SideEffect7)
}

// --- Micro-benchmarks for the substrates' hot paths. ---

// BenchmarkValidateModelWorld is the in-process relying-party sync of the
// Figure 2 world (certificate chains, CMS verification, manifests).
func BenchmarkValidateModelWorld(b *testing.B) {
	w, err := NewModelWorld(false)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Validate(ctx, w)
		if err != nil {
			b.Fatal(err)
		}
		if res.ROAsAccepted != 8 {
			b.Fatalf("ROAs = %d", res.ROAsAccepted)
		}
	}
}

// BenchmarkROVClassify measures route classification against the model
// VRP set.
func BenchmarkROVClassify(b *testing.B) {
	w, err := NewModelWorld(true)
	if err != nil {
		b.Fatal(err)
	}
	res, err := Validate(context.Background(), w)
	if err != nil {
		b.Fatal(err)
	}
	ix := res.Index()
	route := rov.Route{Prefix: MustParsePrefix("63.174.17.0/24"), Origin: 17054}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := ix.State(route); s != rov.Invalid {
			b.Fatalf("state = %v", s)
		}
	}
}

// BenchmarkValidityGrid computes the Figure 5 grid for one origin.
func BenchmarkValidityGrid(b *testing.B) {
	w, err := NewModelWorld(true)
	if err != nil {
		b.Fatal(err)
	}
	res, err := Validate(context.Background(), w)
	if err != nil {
		b.Fatal(err)
	}
	ix := res.Index()
	base := MustParsePrefix("63.160.0.0/12")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := ix.ValidityGrid(base, 24, []ipres.ASN{17054})
		if len(cells) == 0 {
			b.Fatal("empty grid")
		}
	}
}

// BenchmarkResourceSetSubtract measures the set algebra used by whack
// planning.
func BenchmarkResourceSetSubtract(b *testing.B) {
	parent := ipres.MustParseSet("63.160.0.0/12")
	holes := ipres.MustParseSet("63.174.16.0/22, 63.174.20.0/22, 63.174.25.0/24, 63.174.26.0/23")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if parent.Subtract(holes).IsEmpty() {
			b.Fatal("unexpected empty")
		}
	}
}

// BenchmarkSyntheticWorldValidation validates a production-scale synthetic
// deployment (~1300 ROAs, footnote 4).
func BenchmarkSyntheticWorldValidation(b *testing.B) {
	w, err := NewSyntheticWorld(1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Validate(ctx, w)
		if err != nil {
			b.Fatal(err)
		}
		if res.ROAsAccepted < 1200 {
			b.Fatalf("ROAs = %d", res.ROAsAccepted)
		}
	}
}

// BenchmarkValidateSyntheticParallel measures the parallel validation
// pipeline on the production-scale synthetic world at several worker
// counts. workers=1 is the sequential baseline; every sub-benchmark builds
// a fresh relying party per iteration, so the verification cache is always
// cold and the numbers isolate the pipeline itself.
func BenchmarkValidateSyntheticParallel(b *testing.B) {
	w, err := NewSyntheticWorld(1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ValidateParallel(ctx, w, workers)
				if err != nil {
					b.Fatal(err)
				}
				if res.ROAsAccepted < 1200 {
					b.Fatalf("ROAs = %d", res.ROAsAccepted)
				}
			}
		})
	}
}

// BenchmarkValidateSyntheticWarmCache measures a re-sync of an unchanged
// synthetic world on a relying party whose verification cache is already
// populated — with module reuse disabled, so the numbers isolate the
// signature-cache layer: all verifications are cache hits, but hashing,
// manifest cross-checks and the time/CRL/containment validation still run.
func BenchmarkValidateSyntheticWarmCache(b *testing.B) {
	w, err := NewSyntheticWorld(1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	relying := rp.New(rp.Config{Fetcher: w.Stores, Clock: w.Clock, DisableModuleReuse: true}, w.Anchor())
	if _, err := relying.Sync(ctx); err != nil { // cold pass populates the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := relying.Sync(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.ROAsAccepted < 1200 {
			b.Fatalf("ROAs = %d", res.ROAsAccepted)
		}
		if res.VerifyCacheMisses != 0 {
			b.Fatalf("warm re-sync re-verified %d objects", res.VerifyCacheMisses)
		}
	}
}

// BenchmarkValidateSyntheticWarmReuse is the steady state of this PR: a
// re-sync of an unchanged synthetic world with module-level memoization
// enabled. Every publication point proves itself unchanged and reuses its
// validated outputs wholesale — no hashing, no manifest cross-checks, no
// chain walks. Compare against BenchmarkValidateSyntheticWarmCache (the
// verify-cache-only baseline) for the speedup.
func BenchmarkValidateSyntheticWarmReuse(b *testing.B) {
	w, err := NewSyntheticWorld(1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	relying := NewRelyingParty(w, 0)
	if _, err := relying.Sync(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := relying.Sync(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.ROAsAccepted < 1200 {
			b.Fatalf("ROAs = %d", res.ROAsAccepted)
		}
		if res.ModulesRevalidated != 0 {
			b.Fatalf("warm re-sync re-validated %d modules", res.ModulesRevalidated)
		}
	}
}

// BenchmarkSyntheticOneModuleChanged measures the incremental cost of real
// churn: each iteration flips one ROA in one ISP's publication point, so
// exactly that module re-validates and every other one is reused.
func BenchmarkSyntheticOneModuleChanged(b *testing.B) {
	w, err := NewSyntheticWorld(1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	relying := NewRelyingParty(w, 0)
	if _, err := relying.Sync(ctx); err != nil {
		b.Fatal(err)
	}
	isp := w.MustAuthority("rir-0-isp-0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 8.0.240.0/20 sits inside the ISP's /16, clear of its generated
		// ROA blocks and customer /24s.
		if i%2 == 0 {
			if _, err := isp.IssueROA("bench-toggle", 65000, roa.MustParsePrefix("8.0.240.0/20")); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := isp.DeleteROA("bench-toggle"); err != nil {
				b.Fatal(err)
			}
		}
		res, err := relying.Sync(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.ModulesRevalidated != 1 {
			b.Fatalf("revalidated %d modules, want 1", res.ModulesRevalidated)
		}
	}
}

// BenchmarkRTRFanOut measures propagating a one-VRP delta to N concurrently
// connected RTR clients. The serialized frames are shared across clients, so
// per-client cost is a write of pre-built bytes; each iteration waits until
// every client has applied the update.
func BenchmarkRTRFanOut(b *testing.B) {
	base := make([]rov.VRP, 0, 500)
	for i := 0; i < 500; i++ {
		p := MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/250, i%250))
		base = append(base, rov.VRP{Prefix: p, MaxLength: 24, ASN: ipres.ASN(64496 + i%100)})
	}
	extra := rov.VRP{Prefix: MustParsePrefix("192.0.2.0/24"), MaxLength: 24, ASN: 64500}
	snapshot := func(withExtra bool) []rov.VRP {
		out := append([]rov.VRP(nil), base...)
		if withExtra {
			out = append(out, extra)
		}
		return out
	}

	for _, clients := range []int{10, 100} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			bound, cache, stop, err := ServeRTR("127.0.0.1:0", snapshot(false))
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = stop() }()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			synced := make(chan struct{}, clients*4)
			for i := 0; i < clients; i++ {
				c := rtr.NewClient(bound)
				c.OnSync(func([]rov.VRP) { synced <- struct{}{} })
				go func() { _ = c.Run(ctx) }()
			}
			await := func() {
				for i := 0; i < clients; i++ {
					select {
					case <-synced:
					case <-time.After(10 * time.Second):
						b.Fatal("client did not sync")
					}
				}
			}
			await() // initial full sync of every client
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cache.SetVRPs(snapshot(i%2 == 0))
				await()
			}
		})
	}
}

// BenchmarkGeoSynthetic measures the jurisdiction model generation and
// analysis at production scale.
func BenchmarkGeoSynthetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats := geo.Analyze(geo.Synthetic(geo.SyntheticConfig{
			Seed: 2013, Holdings: 1300, CrossBorderProb: 0.15, SubAllocationsPerHolding: 6,
		}))
		if stats.CrossBorder == 0 {
			b.Fatal("no cross-border holdings")
		}
	}
}

// BenchmarkExtSuspenders runs the fail-safe ablation (grace cache vs the
// circular dependency).
func BenchmarkExtSuspenders(b *testing.B) {
	benchExperiment(b, experiments.ExtSuspenders)
}

// BenchmarkExtCollateral measures the collateral-damage distribution on a
// synthetic deployment.
func BenchmarkExtCollateral(b *testing.B) {
	benchExperiment(b, experiments.ExtCollateral)
}

// BenchmarkExtMonitor measures monitor precision under benign churn.
func BenchmarkExtMonitor(b *testing.B) {
	benchExperiment(b, experiments.ExtMonitor)
}

// BenchmarkWhackPlanning isolates the planner (no crypto) on the model.
func BenchmarkWhackPlanning(b *testing.B) {
	w, err := NewModelWorld(false)
	if err != nil {
		b.Fatal(err)
	}
	planner := &core.Planner{Manipulator: w.MustAuthority("sprint")}
	target := core.Target{Holder: w.MustAuthority("continental"), Name: "cont-20"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := planner.Plan(target)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Method != core.MethodShrink {
			b.Fatalf("method = %v", plan.Method)
		}
	}
}

// BenchmarkBGPConvergence measures route propagation on the Table 6
// topology.
func BenchmarkBGPConvergence(b *testing.B) {
	n := bgp.NewNetwork()
	for _, asn := range []ipres.ASN{1, 666, 10, 20, 30, 40} {
		n.AddAS(asn, bgp.PolicyDropInvalid)
	}
	_ = n.PeerOf(10, 20)
	_ = n.ProviderOf(10, 30)
	_ = n.ProviderOf(20, 40)
	_ = n.ProviderOf(10, 1)
	_ = n.ProviderOf(30, 1)
	_ = n.ProviderOf(20, 666)
	_ = n.ProviderOf(40, 666)
	_ = n.Originate(1, MustParsePrefix("63.174.16.0/22"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Originate(666, MustParsePrefix("63.174.17.0/24"))
		if err := n.Converge(); err != nil {
			b.Fatal(err)
		}
		_ = n.Withdraw(666, MustParsePrefix("63.174.17.0/24"))
		if err := n.Converge(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFetchFullVsIncremental is the sync-mode ablation: a full
// re-download against a STAT-driven incremental sync of an unchanged
// publication point, over real TCP.
func BenchmarkFetchFullVsIncremental(b *testing.B) {
	w, err := NewModelWorld(false)
	if err != nil {
		b.Fatal(err)
	}
	addr, stop, err := Serve(w, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	client := ClientFor(addr, 10*time.Second)
	ctx := context.Background()
	uri := repo.URI{Host: addr, Module: "continental"}

	prev, err := client.FetchAll(ctx, uri)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.FetchAll(ctx, uri); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := client.SyncIncremental(ctx, uri, prev)
			if err != nil {
				b.Fatal(err)
			}
			if res.Downloaded != 0 {
				b.Fatalf("unchanged module downloaded %d objects", res.Downloaded)
			}
		}
	})
}
