// Whacking: the paper's Section 3 attacks, end to end. A manipulating
// authority (Sprint) surgically invalidates ROAs issued by its descendants
// — first the clean grandchild shrink (Side Effect 3), then the
// make-before-break variant of Figure 3 — while a monitor watches.
package main

import (
	"context"
	"fmt"
	"log"

	rpkirisk "repro"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/rov"
)

func main() {
	fmt.Println("=== Whack 1: clean grandchild shrink (Side Effect 3) ===")
	cleanShrink()
	fmt.Println("\n=== Whack 2: make-before-break (Figure 3) ===")
	makeBeforeBreak()
}

func cleanShrink() {
	world, err := rpkirisk.NewModelWorld(false)
	if err != nil {
		log.Fatal(err)
	}
	sprint := world.MustAuthority("sprint")
	continental := world.MustAuthority("continental")

	// Sprint targets Continental's ROA (63.174.16.0/20, AS17054).
	planner := &core.Planner{Manipulator: sprint}
	plan, err := planner.Plan(core.Target{Holder: continental, Name: "cont-20"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	// The planner found the paper's exact hole: 63.174.24.0/24 — inside
	// the target ROA, outside every other object. Zero collateral.

	watcher := monitor.NewWatcher()
	watcher.Observe("sprint", world.Stores["sprint"].Snapshot())
	if err := planner.Execute(plan); err != nil {
		log.Fatal(err)
	}

	result, err := rpkirisk.Validate(context.Background(), world)
	if err != nil {
		log.Fatal(err)
	}
	ix := result.Index()
	fmt.Printf("\ntarget   (63.174.16.0/20, AS17054): %v\n",
		ix.State(rov.Route{Prefix: rpkirisk.MustParsePrefix("63.174.16.0/20"), Origin: 17054}))
	fmt.Printf("sibling  (63.174.16.0/22, AS7341):  %v (no collateral damage)\n",
		ix.State(rov.Route{Prefix: rpkirisk.MustParsePrefix("63.174.16.0/22"), Origin: 7341}))
	for _, e := range watcher.Observe("sprint", world.Stores["sprint"].Snapshot()) {
		fmt.Printf("monitor: %v\n", e)
	}
}

func makeBeforeBreak() {
	world, err := rpkirisk.NewModelWorld(false)
	if err != nil {
		log.Fatal(err)
	}
	sprint := world.MustAuthority("sprint")
	continental := world.MustAuthority("continental")

	// This target is covered by Continental's own /20 ROA, so no clean
	// hole exists: Sprint must reissue the /20 ROA as its own first.
	planner := &core.Planner{Manipulator: sprint}
	plan, err := planner.Plan(core.Target{Holder: continental, Name: "cont-22"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	if err := planner.Execute(plan); err != nil {
		log.Fatal(err)
	}

	result, err := rpkirisk.Validate(context.Background(), world)
	if err != nil {
		log.Fatal(err)
	}
	ix := result.Index()
	fmt.Printf("\ntarget    (63.174.16.0/22, AS7341):  %v\n",
		ix.State(rov.Route{Prefix: rpkirisk.MustParsePrefix("63.174.16.0/22"), Origin: 7341}))
	fmt.Printf("bystander (63.174.16.0/20, AS17054): %v (kept alive by Sprint's reissued ROA)\n",
		ix.State(rov.Route{Prefix: rpkirisk.MustParsePrefix("63.174.16.0/20"), Origin: 17054}))
	fmt.Printf("detectability: %d suspicious objects — the price of avoiding collateral\n", plan.Detectability())
}
