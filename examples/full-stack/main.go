// Full stack over real sockets: publication server → relying party (TCP
// fetch + validation) → RTR server → router client → whack → incremental
// withdrawal at the router. Everything the paper's Figure 1 connects, on
// loopback.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	rpkirisk "repro"
	"repro/internal/rtr"
)

func main() {
	// 1. Build the model RPKI and serve every publication point over TCP.
	world, err := rpkirisk.NewModelWorld(false)
	if err != nil {
		log.Fatal(err)
	}
	pubAddr, stopPub, err := rpkirisk.Serve(world, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer stopPub()
	fmt.Println("publication server on", pubAddr)

	// 2. Relying party: fetch and validate over the wire.
	result, err := rpkirisk.ValidateTCP(context.Background(), world, pubAddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relying party: %d CAs, %d ROAs, %d VRPs (complete=%v)\n",
		result.CertsAccepted, result.ROAsAccepted, len(result.VRPs), !result.Incomplete())

	// 3. RTR server with the validated cache; a router client syncs.
	rtrAddr, cache, stopRTR, err := rpkirisk.ServeRTR("127.0.0.1:0", result.VRPs)
	if err != nil {
		log.Fatal(err)
	}
	defer stopRTR()
	router := rtr.NewClient(rtrAddr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = router.Run(ctx) }()
	if !router.WaitSynced(5 * time.Second) {
		log.Fatal("router never synced")
	}
	fmt.Printf("router: %d VRPs at serial %d via RTR on %s\n", len(router.VRPs()), router.Serial(), rtrAddr)

	// 4. The authority whacks a ROA (stealthy delete); the relying party
	//    resyncs; the router receives an incremental withdrawal.
	if err := world.MustAuthority("continental").DeleteROA("cont-22"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncontinental stealthily deletes ROA (63.174.16.0/22, AS7341)...")
	result2, err := rpkirisk.ValidateTCP(context.Background(), world, pubAddr)
	if err != nil {
		log.Fatal(err)
	}
	cache.SetVRPs(result2.VRPs)
	if !router.WaitSerial(cache.Serial(), 5*time.Second) {
		log.Fatal("router never received the withdrawal")
	}
	fmt.Printf("router: %d VRPs at serial %d — the whacked VRP is gone\n", len(router.VRPs()), router.Serial())
	for _, v := range router.VRPs() {
		if v.ASN == 7341 {
			log.Fatal("withdrawal failed!")
		}
	}
	fmt.Println("\nthe route (63.174.16.0/22, AS7341) is now invalid at every")
	fmt.Println("drop-invalid router — and nothing on any CRL says why.")
}
