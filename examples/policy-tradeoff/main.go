// Policy tradeoff: the paper's Section 5 / Table 6. The same network,
// two threats, two relying-party local policies — and no policy wins both:
// drop-invalid stops the subprefix hijack but turns an RPKI manipulation
// into an outage; depref-invalid does the opposite.
package main

import (
	"fmt"
	"log"

	rpkirisk "repro"
	"repro/internal/bgp"
	"repro/internal/ipres"
	"repro/internal/rov"
)

const (
	victimAS   = ipres.ASN(1)
	attackerAS = ipres.ASN(666)
)

var victimPrefix = rpkirisk.MustParsePrefix("63.174.16.0/22")

// buildNetwork wires a small multihomed topology.
func buildNetwork(policy bgp.Policy) *bgp.Network {
	n := bgp.NewNetwork()
	for _, asn := range []ipres.ASN{victimAS, attackerAS, 10, 20, 30, 40} {
		n.AddAS(asn, policy)
	}
	check(n.PeerOf(10, 20))
	check(n.ProviderOf(10, 30))
	check(n.ProviderOf(20, 40))
	check(n.ProviderOf(10, victimAS))
	check(n.ProviderOf(30, victimAS))
	check(n.ProviderOf(20, attackerAS))
	check(n.ProviderOf(40, attackerAS))
	check(n.Originate(victimAS, victimPrefix))
	return n
}

func main() {
	sources := []ipres.ASN{10, 20, 30, 40}
	dst := rpkirisk.MustParseAddr("63.174.17.5")

	fmt.Printf("%-16s | %-18s | %s\n", "policy", "subprefix hijack", "RPKI manipulation")
	fmt.Println("-----------------+--------------------+------------------")
	for _, policy := range []bgp.Policy{bgp.PolicyIgnore, bgp.PolicyDropInvalid, bgp.PolicyDeprefInvalid} {
		// Threat A: subprefix hijack. The victim's ROA is intact; the
		// attacker originates 63.174.17.0/24 inside the victim's /22.
		hijack := buildNetwork(policy)
		hijack.SetSharedIndex(rov.NewIndex(rov.VRP{Prefix: victimPrefix, MaxLength: 22, ASN: victimAS}))
		check(hijack.Originate(attackerAS, rpkirisk.MustParsePrefix("63.174.17.0/24")))
		fracHijack, _, err := hijack.ReachabilityMatrix(sources, dst, victimAS)
		check(err)

		// Threat B: RPKI manipulation. The victim's ROA has been whacked
		// while a covering ROA remains — the route is invalid.
		manip := buildNetwork(policy)
		manip.SetSharedIndex(rov.NewIndex(rov.VRP{
			Prefix: rpkirisk.MustParsePrefix("63.174.16.0/20"), MaxLength: 20, ASN: 17054,
		}))
		fracManip, _, err := manip.ReachabilityMatrix(sources, dst, victimAS)
		check(err)

		fmt.Printf("%-16s | %6.0f%% reachable   | %6.0f%% reachable\n",
			policy, fracHijack*100, fracManip*100)
	}
	fmt.Println("\ndrop-invalid protects against BGP attacks at the cost of RPKI fragility;")
	fmt.Println("depref-invalid does the reverse. The paper: balancing these is open.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
