// Quickstart: build the paper's model RPKI, validate it with a relying
// party, and ask route-origin-validation questions — the library's basic
// loop in ~40 lines.
package main

import (
	"context"
	"fmt"
	"log"

	rpkirisk "repro"
	"repro/internal/rov"
)

func main() {
	// Build the Figure 2 hierarchy: ARIN → Sprint → {ETB, Continental
	// Broadband}, with eight ROAs — real X.509/CMS objects throughout.
	world, err := rpkirisk.NewModelWorld(false)
	if err != nil {
		log.Fatal(err)
	}

	// Run a relying party over the repositories and build the validated
	// cache.
	result, err := rpkirisk.Validate(context.Background(), world)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validated %d authorities and %d ROAs (%d VRPs, cache complete: %v)\n\n",
		result.CertsAccepted, result.ROAsAccepted, len(result.VRPs), !result.Incomplete())

	// Classify BGP routes per RFC 6811.
	ix := result.Index()
	routes := []rov.Route{
		{Prefix: rpkirisk.MustParsePrefix("63.174.16.0/20"), Origin: 17054}, // authorized
		{Prefix: rpkirisk.MustParsePrefix("63.174.16.0/20"), Origin: 666},   // wrong origin
		{Prefix: rpkirisk.MustParsePrefix("63.174.17.0/24"), Origin: 17054}, // subprefix beyond maxLength
		{Prefix: rpkirisk.MustParsePrefix("63.160.0.0/12"), Origin: 1239},   // no covering ROA
	}
	for _, r := range routes {
		state, evidence := ix.Classify(r)
		fmt.Printf("%-28v → %-8v (%d covering VRPs)\n", r, state, len(evidence))
	}

	// The validated cache is what routers consume over RTR; every
	// downstream effect in the paper flows from these three states.
}
