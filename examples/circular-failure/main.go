// Circular failure: the paper's Side Effect 7. Continental Broadband hosts
// its own RPKI repository at 63.174.23.0 inside the very prefix its ROA
// authorizes. A one-time delivery fault makes the ROA unusable, the route
// invalid, the repository unreachable — and the failure persists after the
// fault is fixed, until an operator intervenes manually.
package main

import (
	"context"
	"fmt"
	"log"

	rpkirisk "repro"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ipres"
	"repro/internal/rp"
)

func main() {
	world, err := rpkirisk.NewModelWorld(true) // with Sprint's covering ROA
	if err != nil {
		log.Fatal(err)
	}

	// A small Internet: a provider connecting the relying party's AS and
	// Continental's AS. Routers drop invalid routes.
	network := bgp.NewNetwork()
	for _, asn := range []ipres.ASN{64999, 3356, 17054} {
		network.AddAS(asn, bgp.PolicyDropInvalid)
	}
	check(network.ProviderOf(3356, 64999))
	check(network.ProviderOf(3356, 17054))
	check(network.Originate(17054, rpkirisk.MustParsePrefix("63.174.16.0/20")))

	corrupting := core.NewCorruptingFetcher(world.Stores)
	sim := &core.CircularSim{
		Anchors: []rp.TrustAnchor{world.Anchor()},
		Fetch:   corrupting,
		Sites: map[string]core.RepoSite{
			"continental": {
				Module:      "continental",
				Addr:        rpkirisk.MustParseAddr("63.174.23.0"),
				RoutePrefix: rpkirisk.MustParsePrefix("63.174.16.0/20"),
				OriginAS:    17054,
			},
		},
		Network: network,
		RPAS:    64999,
		Clock:   experiments.Clock,
	}

	step := func(label string) {
		rep, err := sim.Step(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		state, _ := sim.RouteState("continental")
		fmt.Printf("%-26s route=%-8v unreachable=%-15v vrps=%d\n", label, state, rep.Unreachable, rep.VRPCount)
	}

	step("t0: bootstrap")
	corrupting.Corrupt("continental", "cont-20.roa")
	step("t1: transient corruption")
	corrupting.Heal("continental")
	step("t2: fault FIXED")
	step("t3: ...still broken")
	step("t4: ...still broken")
	fmt.Println("\nthe repository recovered at t2, but the relying party cannot reach it:")
	fmt.Println("fetching the ROA requires the route; validating the route requires the ROA.")
	sim.ManualOverride("continental", true)
	step("t5: manual intervention")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
