package rpkirisk

// Integration tests: full pipelines across module boundaries, over real
// sockets where the paper's mechanics depend on delivery (Side Effects 6–7)
// and in-process where they depend only on object state.

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/ipres"
	"repro/internal/monitor"
	"repro/internal/repo"
	"repro/internal/roa"
	"repro/internal/rov"
	"repro/internal/rp"
	"repro/internal/rtr"
)

// TestPipelineWhackToRouter drives one whack through every layer: CA →
// repository server (TCP) → relying party → RTR → router client → BGP
// selection.
func TestPipelineWhackToRouter(t *testing.T) {
	world, err := NewModelWorld(true)
	if err != nil {
		t.Fatal(err)
	}
	pubAddr, stopPub, err := Serve(world, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stopPub()

	result, err := ValidateTCP(context.Background(), world, pubAddr)
	if err != nil {
		t.Fatal(err)
	}
	if result.Incomplete() {
		t.Fatalf("TCP sync incomplete: %v", result.Diagnostics)
	}

	rtrAddr, cache, stopRTR, err := ServeRTR("127.0.0.1:0", result.VRPs)
	if err != nil {
		t.Fatal(err)
	}
	defer stopRTR()
	router := rtr.NewClient(rtrAddr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = router.Run(ctx) }()
	if !router.WaitSynced(5 * time.Second) {
		t.Fatal("router sync failed")
	}

	// BGP network fed from the router's RTR-learned table.
	network := bgp.NewNetwork()
	for _, asn := range []ipres.ASN{64999, 3356, 17054} {
		network.AddAS(asn, bgp.PolicyDropInvalid)
	}
	mustOK(t, network.ProviderOf(3356, 64999))
	mustOK(t, network.ProviderOf(3356, 17054))
	mustOK(t, network.Originate(17054, MustParsePrefix("63.174.16.0/20")))
	network.SetSharedIndex(rov.NewIndex(router.VRPs()...))
	ok, err := network.CanReach(64999, MustParseAddr("63.174.23.0"), 17054)
	if err != nil || !ok {
		t.Fatalf("pre-whack reachability: %v %v", ok, err)
	}

	// The whack: Sprint surgically kills Continental's /20 ROA.
	planner := &core.Planner{Manipulator: world.MustAuthority("sprint")}
	plan, err := planner.Plan(core.Target{Holder: world.MustAuthority("continental"), Name: "cont-20"})
	if err != nil {
		t.Fatal(err)
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}

	// Resync over TCP, push over RTR, re-evaluate BGP.
	result2, err := ValidateTCP(context.Background(), world, pubAddr)
	if err != nil {
		t.Fatal(err)
	}
	cache.SetVRPs(result2.VRPs)
	if !router.WaitSerial(cache.Serial(), 5*time.Second) {
		t.Fatal("router update failed")
	}
	network.SetSharedIndex(rov.NewIndex(router.VRPs()...))
	ok, err = network.CanReach(64999, MustParseAddr("63.174.23.0"), 17054)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("the whacked prefix should be unreachable under drop-invalid " +
			"(route invalid via Sprint's covering /12-13 ROA)")
	}
}

// TestPipelineServerFaultsVisibleToRP injects repository-server faults and
// checks they surface as relying-party diagnostics over TCP.
func TestPipelineServerFaultsVisibleToRP(t *testing.T) {
	world, err := NewModelWorld(false)
	if err != nil {
		t.Fatal(err)
	}
	srv := repo.NewServer()
	faults := make(map[string]*repo.Faults)
	for module, store := range world.Stores {
		f := repo.NewFaults()
		faults[module] = f
		srv.AddModule(module, store, f)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sync := func(policy rp.MissingPolicy) *rp.Result {
		t.Helper()
		relying := rp.New(rp.Config{
			Fetcher: ClientFor(addr, 5*time.Second),
			Clock:   world.Clock,
			Policy:  policy,
		}, world.Anchor())
		res, err := relying.Sync(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Clean baseline.
	if res := sync(rp.BestEffort); res.Incomplete() {
		t.Fatalf("baseline incomplete: %v", res.Diagnostics)
	}

	// A third party corrupts one ROA in flight: hash mismatch diagnosed,
	// the rest of the tree survives.
	faults["continental"].Corrupt("cont-20.roa")
	res := sync(rp.BestEffort)
	if !res.Incomplete() {
		t.Fatal("corruption must be diagnosed")
	}
	sawHash := false
	for _, d := range res.Diagnostics {
		if d.Kind == rp.DiagHashMismatch && d.Object == "cont-20.roa" {
			sawHash = true
		}
	}
	if !sawHash {
		t.Errorf("want hash-mismatch diagnostic, got %v", res.Diagnostics)
	}
	if res.ROAsAccepted != 7 {
		t.Errorf("7 of 8 ROAs should survive, got %d", res.ROAsAccepted)
	}

	// The whole module refuses connections: fetch failure, subtree gone.
	faults["continental"].Restore("")
	faults["continental"].Refuse(true)
	res = sync(rp.BestEffort)
	sawFetch := false
	for _, d := range res.Diagnostics {
		if d.Kind == rp.DiagFetchFailure && d.Module == "continental" {
			sawFetch = true
		}
	}
	if !sawFetch {
		t.Errorf("want fetch-failure diagnostic, got %v", res.Diagnostics)
	}
	ix := res.Index()
	if ix.State(rov.Route{Prefix: MustParsePrefix("63.174.16.0/20"), Origin: 17054}) == rov.Valid {
		t.Error("unreachable module's ROAs must be absent")
	}
	if ix.State(rov.Route{Prefix: MustParsePrefix("63.161.0.0/16"), Origin: 19429}) != rov.Valid {
		t.Error("other modules must be unaffected")
	}
}

// TestPipelineMonitorOverTCP runs the monitor against a live server while
// the authority misbehaves.
func TestPipelineMonitorOverTCP(t *testing.T) {
	world, err := NewModelWorld(false)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop, err := Serve(world, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	client := &repo.Client{Timeout: 5 * time.Second}
	watcher := monitor.NewWatcher()
	observe := func(module string) []monitor.Event {
		t.Helper()
		files, err := client.FetchAll(context.Background(), repo.URI{Host: addr, Module: module})
		if err != nil {
			t.Fatal(err)
		}
		return watcher.Observe(module, files)
	}
	observe("sprint") // baseline

	// The attack happens between polls.
	planner := &core.Planner{Manipulator: world.MustAuthority("sprint")}
	plan, err := planner.Plan(core.Target{Holder: world.MustAuthority("continental"), Name: "cont-22"})
	if err != nil {
		t.Fatal(err)
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}

	events := observe("sprint")
	alerts := monitor.Filter(events, monitor.Alert)
	if len(alerts) < 2 { // rc-shrink + suspicious-reissue
		t.Errorf("want shrink+reissue alerts over TCP, got %v", events)
	}
}

// TestPipelineKeyRolloverInvisible checks that a full key rollover — the
// legitimate operation that motivated overwritable persistent names — is
// indistinguishable from routine churn to both the relying party and the
// monitor.
func TestPipelineKeyRolloverInvisible(t *testing.T) {
	world, err := NewModelWorld(false)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Validate(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	watcher := monitor.NewWatcher()
	for _, m := range []string{"arin", "sprint", "etb", "continental"} {
		watcher.Observe(m, world.Stores[m].Snapshot())
	}

	if err := world.MustAuthority("sprint").RollKey(); err != nil {
		t.Fatal(err)
	}

	after, err := Validate(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	if after.Incomplete() {
		t.Fatalf("rollover broke validation: %v", after.Diagnostics)
	}
	if len(after.VRPs) != len(before.VRPs) {
		t.Errorf("VRPs %d → %d across rollover", len(before.VRPs), len(after.VRPs))
	}
	var all []monitor.Event
	for _, m := range []string{"arin", "sprint", "etb", "continental"} {
		all = append(all, watcher.Observe(m, world.Stores[m].Snapshot())...)
	}
	if alerts := monitor.Filter(all, monitor.Warning); len(alerts) != 0 {
		t.Errorf("rollover should not alarm the monitor: %v", alerts)
	}
}

// TestPipelineExpiryTakesPrefixOffline advances the clock past certificate
// lifetimes: the paper's "renewal of an expiring ROA could be delayed"
// fault, with drop-invalid consequences.
func TestPipelineExpiryTakesPrefixOffline(t *testing.T) {
	world, err := NewModelWorld(true)
	if err != nil {
		t.Fatal(err)
	}
	// A relying party validating 400 days later: everything expired.
	late := func() time.Time { return world.Clock().Add(400 * 24 * time.Hour) }
	relying := rp.New(rp.Config{Fetcher: world.Stores, Clock: late}, world.Anchor())
	res, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VRPs) != 0 {
		t.Fatalf("expired world should yield no VRPs, got %d", len(res.VRPs))
	}
	expired := 0
	for _, d := range res.Diagnostics {
		if strings.Contains(d.Err.Error(), "expired") {
			expired++
		}
	}
	if expired == 0 {
		t.Error("expiry should be diagnosed explicitly")
	}
}

// TestPipelineDeepWhackOverTCP executes a great-grandchild whack against a
// served world and verifies the replacement-RC chain validates over the
// wire.
func TestPipelineDeepWhackOverTCP(t *testing.T) {
	world, err := NewModelWorld(false)
	if err != nil {
		t.Fatal(err)
	}
	smallStore := repo.NewStore()
	world.Stores["smallco"] = smallStore
	small, err := world.MustAuthority("continental").CreateChild("smallco",
		ipres.MustParseSet("63.174.18.0/23"), smallStore,
		repo.URI{Host: "smallco.example:8873", Module: "smallco"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.IssueROA("small-a", 64501, roa.MustParsePrefix("63.174.18.0/24")); err != nil {
		t.Fatal(err)
	}
	if _, err := small.IssueROA("small-b", 64502, roa.MustParsePrefix("63.174.19.0/24")); err != nil {
		t.Fatal(err)
	}

	addr, stop, err := Serve(world, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	planner := &core.Planner{Manipulator: world.MustAuthority("sprint")}
	plan, err := planner.Plan(core.Target{Holder: small, Name: "small-a"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != core.MethodDeepWhack {
		t.Fatalf("method = %v", plan.Method)
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}

	res, err := ValidateTCP(context.Background(), world, addr)
	if err != nil {
		t.Fatal(err)
	}
	ix := res.Index()
	if ix.State(rov.Route{Prefix: MustParsePrefix("63.174.18.0/24"), Origin: 64501}) == rov.Valid {
		t.Error("deep target should be whacked over TCP too")
	}
	if ix.State(rov.Route{Prefix: MustParsePrefix("63.174.19.0/24"), Origin: 64502}) != rov.Valid {
		t.Error("sibling must survive via the replacement RC chain")
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
