// Package rpkirisk is a library for studying the risks of misbehaving RPKI
// authorities, reproducing Cooper, Heilman, Brogle, Reyzin and Goldberg,
// "On the Risk of Misbehaving RPKI Authorities" (HotNets 2013).
//
// The package is a facade over the implementation in internal/: it builds
// complete RPKI deployments with real DER-encoded certificates, ROAs,
// manifests and CRLs; serves them over a TCP publication protocol;
// validates them with a relying party into route-origin-validation state;
// feeds routers over the RPKI-to-Router protocol; propagates routes through
// a BGP simulator; and — the paper's contribution — plans, executes,
// measures and detects the attacks available to the authorities themselves.
//
// # Quick start
//
//	world, _ := rpkirisk.NewModelWorld(false)
//	result, _ := rpkirisk.Validate(context.Background(), world)
//	ix := result.Index()
//	state := ix.State(rov.Route{Prefix: ipres.MustParsePrefix("63.174.16.0/20"), Origin: 17054})
//
// # Whacking a ROA
//
//	planner := &rpkirisk.Planner{Manipulator: world.MustAuthority("sprint")}
//	plan, _ := planner.Plan(rpkirisk.Target{Holder: world.MustAuthority("continental"), Name: "cont-20"})
//	_ = planner.Execute(plan)
//
// See the examples/ directory for runnable programs and internal/experiments
// for the harness that regenerates every table and figure of the paper.
package rpkirisk

import (
	"context"
	"encoding/base64"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/bgp"
	"repro/internal/ca"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/ipres"
	"repro/internal/modelgen"
	"repro/internal/monitor"
	"repro/internal/repo"
	"repro/internal/rov"
	"repro/internal/rp"
	"repro/internal/rtr"
)

// Re-exported core types: the public API surface of the library.
type (
	// World is a complete RPKI deployment (authorities + repositories).
	World = modelgen.World
	// Authority is an RPKI certificate authority.
	Authority = ca.Authority
	// Planner computes and executes whack plans.
	Planner = core.Planner
	// Plan is an analyzed whack plan.
	Plan = core.Plan
	// Target identifies a ROA to whack.
	Target = core.Target
	// CircularSim couples relying-party fetching with BGP reachability.
	CircularSim = core.CircularSim
	// RepoSite places a publication point in the routed network.
	RepoSite = core.RepoSite
	// Watcher is the repository-abuse monitor.
	Watcher = monitor.Watcher
	// Network is the BGP simulator.
	Network = bgp.Network
	// RelyingParty validates RPKI hierarchies into VRP sets.
	RelyingParty = rp.RelyingParty
	// Result is a relying-party sync outcome.
	Result = rp.Result
	// Experiment reproduces one paper artifact.
	Experiment = experiments.Experiment
)

// NewModelWorld builds the paper's Figure 2 model RPKI. withSprintCover
// additionally issues the covering ROA of Figure 5 (right).
func NewModelWorld(withSprintCover bool) (*World, error) {
	return modelgen.Figure2(experiments.Clock, withSprintCover)
}

// NewSyntheticWorld builds a production-sized synthetic deployment
// (≈1300 ROAs, the paper's footnote 4) with the given seed.
func NewSyntheticWorld(seed int64) (*World, error) {
	return modelgen.Synthetic(modelgen.ProductionSized(seed))
}

// NewLiveModelWorld is NewModelWorld with certificate validity anchored at
// the current wall clock instead of the fixed 2013 experiment epoch — for
// interactive use of the binaries, where relying parties validate at
// time.Now.
func NewLiveModelWorld(withSprintCover bool) (*World, error) {
	return modelgen.Figure2(time.Now, withSprintCover)
}

// NewLiveSyntheticWorld is NewSyntheticWorld anchored at the wall clock.
func NewLiveSyntheticWorld(seed int64) (*World, error) {
	cfg := modelgen.ProductionSized(seed)
	cfg.Clock = time.Now
	return modelgen.Synthetic(cfg)
}

// Validate syncs a relying party over the world's repositories in-process
// and returns the validated cache. Validation parallelizes across
// runtime.GOMAXPROCS workers; use ValidateParallel for an explicit count.
func Validate(ctx context.Context, w *World) (*rp.Result, error) {
	return ValidateParallel(ctx, w, 0)
}

// ValidateParallel is Validate with an explicit validation worker count:
// 1 is the sequential baseline, 0 means runtime.GOMAXPROCS. Results are
// identical (and deterministic) at any setting.
func ValidateParallel(ctx context.Context, w *World, workers int) (*rp.Result, error) {
	relying := rp.New(rp.Config{Fetcher: w.Stores, Clock: w.Clock, Workers: workers}, w.Anchor())
	return relying.Sync(ctx)
}

// NewRelyingParty builds a reusable relying party over the world's stores
// with the given worker count. Unlike Validate, repeated Sync calls on the
// returned relying party share its verification cache, so re-syncing an
// unchanged world skips all CMS and certificate signature re-verification —
// the monitor's polling loop in one object.
func NewRelyingParty(w *World, workers int) *RelyingParty {
	return rp.New(rp.Config{Fetcher: w.Stores, Clock: w.Clock, Workers: workers}, w.Anchor())
}

// Experiments returns the harness regenerating every table and figure of
// the paper.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment runs one experiment by ID ("all" for everything).
func RunExperiment(id string) ([]*experiments.Result, error) { return experiments.Run(id) }

// Table4 returns the paper's Table 4 rows.
func Table4() []geo.Holding { return geo.Table4() }

// Serve publishes every repository of the world on one TCP server bound to
// addr ("127.0.0.1:0" for ephemeral). It returns the bound address and a
// shutdown function.
func Serve(w *World, addr string) (string, func() error, error) {
	srv := repo.NewServer()
	for module, store := range w.Stores {
		srv.AddModule(module, store, nil)
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		return "", nil, err
	}
	return bound, srv.Close, nil
}

// ClientFor returns a repository client that dials every publication point
// at the given address, regardless of the host named in certificate SIAs.
// Use it with Serve to run a full TCP relying-party sync against a world
// whose certificates reference symbolic hosts.
func ClientFor(addr string, timeout time.Duration) *repo.Client {
	return &repo.Client{
		Timeout: timeout,
		Dial: func(ctx context.Context, network, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
	}
}

// ValidateTCP syncs a relying party against a served world over real TCP.
func ValidateTCP(ctx context.Context, w *World, addr string) (*rp.Result, error) {
	relying := rp.New(rp.Config{
		Fetcher: ClientFor(addr, 10*time.Second),
		Clock:   w.Clock,
	}, w.Anchor())
	return relying.Sync(ctx)
}

// ServeRTR exposes a validated cache over the RPKI-to-Router protocol,
// returning the bound address, the live cache handle (update it with
// SetVRPs) and a shutdown function.
func ServeRTR(addr string, vrps []rov.VRP) (string, *rtr.Cache, func() error, error) {
	cache := rtr.NewCache(uint16(os.Getpid())) //nolint:gosec // session id only
	cache.SetVRPs(vrps)
	srv := rtr.NewServer(cache)
	bound, err := srv.Listen(addr)
	if err != nil {
		return "", nil, nil, err
	}
	return bound, cache, srv.Close, nil
}

// WriteTAL writes a trust anchor locator for the world's anchor: the
// publication URI on the first line and the base64 DER certificate after
// it.
func WriteTAL(w *World, path string) error {
	anchor := w.Anchor()
	content := anchor.URI.String() + "\n" + base64.StdEncoding.EncodeToString(anchor.CertDER) + "\n"
	return os.WriteFile(path, []byte(content), 0o644)
}

// ReadTAL parses a trust anchor locator written by WriteTAL.
func ReadTAL(path string) (rp.TrustAnchor, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return rp.TrustAnchor{}, err
	}
	lines := strings.SplitN(strings.TrimSpace(string(content)), "\n", 2)
	if len(lines) != 2 {
		return rp.TrustAnchor{}, fmt.Errorf("rpkirisk: malformed TAL %q", path)
	}
	uri, _, err := repo.ParseURI(strings.TrimSpace(lines[0]))
	if err != nil {
		return rp.TrustAnchor{}, err
	}
	der, err := base64.StdEncoding.DecodeString(strings.TrimSpace(lines[1]))
	if err != nil {
		return rp.TrustAnchor{}, fmt.Errorf("rpkirisk: bad TAL base64: %w", err)
	}
	return rp.TrustAnchor{CertDER: der, URI: uri}, nil
}

// MustParsePrefix re-exports prefix parsing for example programs.
func MustParsePrefix(s string) ipres.Prefix { return ipres.MustParsePrefix(s) }

// MustParseAddr re-exports address parsing for example programs.
func MustParseAddr(s string) ipres.Addr { return ipres.MustParseAddr(s) }
